#include "nn/layers.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "tensor/parallel.hpp"
#include "tensor/scratch.hpp"

namespace a4nn::nn {

const char* activation_name(Activation a) {
  return a == Activation::kRelu ? "relu" : "none";
}

Activation activation_from_name(const std::string& name) {
  if (name == "relu") return Activation::kRelu;
  if (name == "none") return Activation::kNone;
  throw std::invalid_argument("unknown activation '" + name + "'");
}

util::Json tensor_to_json(const Tensor& t) {
  util::Json j = util::Json::object();
  util::JsonArray shape;
  for (std::size_t d : t.shape()) shape.emplace_back(d);
  j["shape"] = util::Json(std::move(shape));
  util::JsonArray data;
  data.reserve(t.numel());
  for (std::size_t i = 0; i < t.numel(); ++i)
    data.emplace_back(static_cast<double>(t[i]));
  j["data"] = util::Json(std::move(data));
  return j;
}

Tensor tensor_from_json(const util::Json& j) {
  Shape shape;
  for (const auto& d : j.at("shape").as_array())
    shape.push_back(static_cast<std::size_t>(d.as_int()));
  const auto& arr = j.at("data").as_array();
  std::vector<float> data;
  data.reserve(arr.size());
  for (const auto& v : arr) data.push_back(static_cast<float>(v.as_number()));
  return Tensor(std::move(shape), std::move(data));
}

namespace {

void check_rank4(const Shape& s, const char* who) {
  if (s.size() != 4)
    throw std::invalid_argument(std::string(who) + ": expected NCHW input, got " +
                                tensor::shape_to_string(s));
}

// dL/d(pre-activation) for a layer with a fused ReLU: the cached output is
// the post-ReLU value, so out > 0 marks exactly the pass-through entries.
Tensor relu_masked_grad(const Tensor& grad_out, const Tensor& output) {
  Tensor masked(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.numel(); ++i)
    masked[i] = output[i] > 0.0f ? grad_out[i] : 0.0f;
  return masked;
}

}  // namespace

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad) {
  if (in_channels == 0 || out_channels == 0 || kernel == 0 || stride == 0)
    throw std::invalid_argument("Conv2d: zero-sized configuration");
  const std::size_t patch = in_channels * kernel * kernel;
  weight_ = Tensor::he_init({out_channels, patch}, patch, rng);
  weight_grad_ = Tensor::zeros({out_channels, patch});
  bias_ = Tensor::zeros({out_channels});
  bias_grad_ = Tensor::zeros({out_channels});
}

tensor::ConvGeometry Conv2d::geometry(const Shape& in) const {
  tensor::ConvGeometry g;
  g.in_channels = in_channels_;
  g.in_h = in[in.size() - 2];
  g.in_w = in[in.size() - 1];
  g.kernel = kernel_;
  g.stride = stride_;
  g.pad = pad_;
  g.validate();  // reject degenerate geometries before any kernel runs
  return g;
}

Tensor Conv2d::forward(const Tensor& x, bool training) {
  check_rank4(x.shape(), "Conv2d");
  if (x.dim(1) != in_channels_)
    throw std::invalid_argument("Conv2d: channel mismatch");
  const std::size_t batch = x.dim(0);
  const auto g = geometry(x.shape());
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t cols = oh * ow;
  const std::size_t patch = g.patch_size();
  const std::size_t image_size = in_channels_ * g.in_h * g.in_w;

  if (training) {
    input_cache_ = x;
    in_shape_cache_ = x.shape();
    // im2col results persist until backward; the vector reuses its capacity
    // across batches and im2col overwrites every entry.
    columns_cache_.resize(batch * patch * cols);
  }

  Tensor out({batch, out_channels_, oh, ow});
  tensor::Epilogue ep;
  ep.bias = tensor::Epilogue::Bias::kPerRow;  // row = output channel
  ep.bias_data = bias_.data();
  ep.relu = act_ == Activation::kRelu;
  // Images write disjoint output slices, so chunking is free of races and
  // the fixed partition keeps results thread-count independent. Training
  // materializes im2col into the backward cache (backward re-reads the
  // columns); inference goes through conv2d_forward_direct, which packs
  // image tiles straight into the GEMM panels for viable geometries and
  // falls back to a scratch-arena im2col otherwise — bit-identical either
  // way (see ops.hpp).
  tensor::parallel_chunks(batch, [&](std::size_t, std::size_t begin,
                                     std::size_t end) {
    for (std::size_t n = begin; n < end; ++n) {
      const std::span<const float> image{x.data() + n * image_size,
                                         image_size};
      float* out_n = out.data() + n * out_channels_ * cols;
      if (training) {
        std::span<float> col(columns_cache_.data() + n * patch * cols,
                             patch * cols);
        tensor::im2col(g, image, col);
        // out_n(oc x cols) = act(W(oc x patch) * col(patch x cols) + bias)
        tensor::gemm_ex(out_channels_, patch, cols, weight_.data(), col.data(),
                        out_n, ep);
      } else {
        tensor::conv2d_forward_direct(g, out_channels_, weight_.data(), image,
                                      out_n, ep);
      }
    }
  });
  if (training)
    output_cache_ = act_ != Activation::kNone ? out : Tensor();
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const Shape& in = in_shape_cache_;
  const std::size_t batch = in[0];
  const auto g = geometry(in);
  const std::size_t cols = g.out_h() * g.out_w();
  const std::size_t patch = g.patch_size();
  const std::size_t image_size = in_channels_ * g.in_h * g.in_w;

  const Tensor* gsrc = &grad_out;
  Tensor masked;
  if (act_ == Activation::kRelu) {
    masked = relu_masked_grad(grad_out, output_cache_);
    gsrc = &masked;
  }

  Tensor grad_in(in);
  // Chunk-private weight/bias gradient slabs, reduced in chunk order below
  // — the reduction order never depends on the worker count.
  const std::size_t chunks = tensor::intra_op_chunks(batch);
  tensor::ScratchScope scratch;
  std::span<float> dw_slabs =
      scratch.alloc_zeroed(chunks * out_channels_ * patch);
  std::span<float> db_slabs = scratch.alloc_zeroed(chunks * out_channels_);
  tensor::parallel_chunks(batch, [&](std::size_t c, std::size_t begin,
                                     std::size_t end) {
    float* dw = dw_slabs.data() + c * out_channels_ * patch;
    float* db = db_slabs.data() + c * out_channels_;
    tensor::ScratchScope local;  // this worker thread's arena
    std::span<float> grad_cols = local.alloc(patch * cols);
    for (std::size_t n = begin; n < end; ++n) {
      const float* gout = gsrc->data() + n * out_channels_ * cols;
      const float* col = columns_cache_.data() + n * patch * cols;
      // dW(oc x patch) += gout(oc x cols) * col^T(cols x patch)
      tensor::gemm_a_bt_acc(out_channels_, cols, patch, gout, col, dw);
      // db(oc) += sum over cells
      for (std::size_t oc = 0; oc < out_channels_; ++oc) {
        float acc = 0.0f;
        const float* row = gout + oc * cols;
        for (std::size_t i = 0; i < cols; ++i) acc += row[i];
        db[oc] += acc;
      }
      // dcol(patch x cols) = W^T(patch x oc) * gout(oc x cols)
      tensor::gemm_at_b(patch, out_channels_, cols, weight_.data(), gout,
                        grad_cols.data());
      tensor::col2im(g, grad_cols,
                     {grad_in.data() + n * image_size, image_size});
    }
  });
  for (std::size_t c = 0; c < chunks; ++c) {
    tensor::axpy(1.0f, dw_slabs.subspan(c * out_channels_ * patch,
                                        out_channels_ * patch),
                 weight_grad_.span());
    tensor::axpy(1.0f, db_slabs.subspan(c * out_channels_, out_channels_),
                 bias_grad_.span());
  }
  return grad_in;
}

std::vector<ParamSlot> Conv2d::params() {
  return {{"weight", &weight_, &weight_grad_},
          {"bias", &bias_, &bias_grad_}};
}

Shape Conv2d::output_shape(const Shape& in) const {
  // Accepts (C,H,W); batch dim is handled by callers.
  if (in.size() != 3)
    throw std::invalid_argument("Conv2d::output_shape: expected CHW");
  tensor::ConvGeometry g;
  g.in_channels = in_channels_;
  g.in_h = in[1];
  g.in_w = in[2];
  g.kernel = kernel_;
  g.stride = stride_;
  g.pad = pad_;
  g.validate();
  return {out_channels_, g.out_h(), g.out_w()};
}

std::uint64_t Conv2d::flops(const Shape& in) const {
  const Shape out = output_shape(in);
  const std::uint64_t cells = out[1] * out[2];
  const std::uint64_t patch = in_channels_ * kernel_ * kernel_;
  // 2 FLOPs per MAC plus one add for the bias; a fused ReLU costs what the
  // standalone layer it replaced did.
  return cells * out_channels_ *
         (2 * patch + 1 + (act_ == Activation::kRelu ? 1 : 0));
}

util::Json Conv2d::spec() const {
  util::Json j = util::Json::object();
  j["kind"] = kind();
  j["in_channels"] = in_channels_;
  j["out_channels"] = out_channels_;
  j["kernel"] = kernel_;
  j["stride"] = stride_;
  j["pad"] = pad_;
  if (act_ != Activation::kNone) j["activation"] = activation_name(act_);
  return j;
}

util::Json Conv2d::weights() const {
  util::Json j = util::Json::object();
  j["weight"] = tensor_to_json(weight_);
  j["bias"] = tensor_to_json(bias_);
  return j;
}

void Conv2d::load_weights(const util::Json& w) {
  Tensor weight = tensor_from_json(w.at("weight"));
  Tensor bias = tensor_from_json(w.at("bias"));
  if (!weight.same_shape(weight_) || !bias.same_shape(bias_))
    throw std::invalid_argument("Conv2d::load_weights: shape mismatch");
  weight_ = std::move(weight);
  bias_ = std::move(bias);
}

// ---------------------------------------------------------------- Linear

Linear::Linear(std::size_t in_features, std::size_t out_features,
               util::Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  if (in_features == 0 || out_features == 0)
    throw std::invalid_argument("Linear: zero-sized configuration");
  weight_ =
      Tensor::xavier_init({out_features, in_features}, in_features,
                          out_features, rng);
  weight_grad_ = Tensor::zeros({out_features, in_features});
  bias_ = Tensor::zeros({out_features});
  bias_grad_ = Tensor::zeros({out_features});
}

Tensor Linear::forward(const Tensor& x, bool training) {
  if (x.rank() != 2 || x.dim(1) != in_features_)
    throw std::invalid_argument("Linear: expected (N x " +
                                std::to_string(in_features_) + ") input, got " +
                                tensor::shape_to_string(x.shape()));
  if (training) input_cache_ = x;
  const std::size_t batch = x.dim(0);
  Tensor out({batch, out_features_});
  tensor::Epilogue ep;
  ep.bias = tensor::Epilogue::Bias::kPerCol;  // column = output feature
  ep.bias_data = bias_.data();
  ep.relu = act_ == Activation::kRelu;
  // out(N x out) = act(x(N x in) * W^T(in x out) + bias). A row's value is
  // independent of the row blocking (gemm's small/blocked choice and
  // k-accumulation ignore m), so the split is a pure scheduling decision:
  // training chunks rows for intra-op parallelism; inference issues one
  // whole-batch call so every weight tile is reused across the micro-batch
  // — the GEMM runs ~10x faster per row at m=32 than at m=1.
  if (training) {
    tensor::parallel_chunks(batch, [&](std::size_t, std::size_t begin,
                                       std::size_t end) {
      tensor::gemm_a_bt_ex(end - begin, in_features_, out_features_,
                           x.data() + begin * in_features_, weight_.data(),
                           out.data() + begin * out_features_, ep);
    });
  } else {
    tensor::gemm_a_bt_ex(batch, in_features_, out_features_, x.data(),
                         weight_.data(), out.data(), ep);
  }
  if (training)
    output_cache_ = act_ != Activation::kNone ? out : Tensor();
  return out;
}

Tensor Linear::backward(const Tensor& grad_out) {
  const std::size_t batch = input_cache_.dim(0);
  const Tensor* gsrc = &grad_out;
  Tensor masked;
  if (act_ == Activation::kRelu) {
    masked = relu_masked_grad(grad_out, output_cache_);
    gsrc = &masked;
  }

  const std::size_t chunks = tensor::intra_op_chunks(batch);
  tensor::ScratchScope scratch;
  std::span<float> dw_slabs =
      scratch.alloc_zeroed(chunks * out_features_ * in_features_);
  std::span<float> db_slabs = scratch.alloc_zeroed(chunks * out_features_);
  Tensor grad_in({batch, in_features_});
  tensor::parallel_chunks(batch, [&](std::size_t c, std::size_t begin,
                                     std::size_t end) {
    const std::size_t rows = end - begin;
    // dW(out x in) += gout^T(out x rows) * x(rows x in)
    tensor::gemm_at_b_acc(out_features_, rows, in_features_,
                          gsrc->data() + begin * out_features_,
                          input_cache_.data() + begin * in_features_,
                          dw_slabs.data() + c * out_features_ * in_features_);
    float* db = db_slabs.data() + c * out_features_;
    for (std::size_t n = begin; n < end; ++n) {
      const float* row = gsrc->data() + n * out_features_;
      for (std::size_t j = 0; j < out_features_; ++j) db[j] += row[j];
    }
    // dx(rows x in) = gout(rows x out) * W(out x in)
    tensor::gemm(rows, out_features_, in_features_,
                 gsrc->data() + begin * out_features_, weight_.data(),
                 grad_in.data() + begin * in_features_);
  });
  for (std::size_t c = 0; c < chunks; ++c) {
    tensor::axpy(1.0f, dw_slabs.subspan(c * out_features_ * in_features_,
                                        out_features_ * in_features_),
                 weight_grad_.span());
    tensor::axpy(1.0f, db_slabs.subspan(c * out_features_, out_features_),
                 bias_grad_.span());
  }
  return grad_in;
}

std::vector<ParamSlot> Linear::params() {
  return {{"weight", &weight_, &weight_grad_},
          {"bias", &bias_, &bias_grad_}};
}

Shape Linear::output_shape(const Shape& in) const {
  if (in.size() != 1 || in[0] != in_features_)
    throw std::invalid_argument("Linear::output_shape: feature mismatch");
  return {out_features_};
}

std::uint64_t Linear::flops(const Shape& in) const {
  // Same contract as output_shape: a FLOPs walk that hands this layer the
  // wrong feature count is a wiring bug upstream; silently returning the
  // weight-matrix cost would hide it from the accounting.
  if (in.size() != 1 || in[0] != in_features_)
    throw std::invalid_argument("Linear::flops: feature mismatch");
  return static_cast<std::uint64_t>(out_features_) *
         (2 * in_features_ + 1 + (act_ == Activation::kRelu ? 1 : 0));
}

util::Json Linear::spec() const {
  util::Json j = util::Json::object();
  j["kind"] = kind();
  j["in_features"] = in_features_;
  j["out_features"] = out_features_;
  if (act_ != Activation::kNone) j["activation"] = activation_name(act_);
  return j;
}

util::Json Linear::weights() const {
  util::Json j = util::Json::object();
  j["weight"] = tensor_to_json(weight_);
  j["bias"] = tensor_to_json(bias_);
  return j;
}

void Linear::load_weights(const util::Json& w) {
  Tensor weight = tensor_from_json(w.at("weight"));
  Tensor bias = tensor_from_json(w.at("bias"));
  if (!weight.same_shape(weight_) || !bias.same_shape(bias_))
    throw std::invalid_argument("Linear::load_weights: shape mismatch");
  weight_ = std::move(weight);
  bias_ = std::move(bias);
}

// ---------------------------------------------------------------- ReLU

Tensor ReLU::forward(const Tensor& x, bool training) {
  if (training) input_cache_ = x;
  Tensor out(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i)
    out[i] = x[i] > 0.0f ? x[i] : 0.0f;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor grad_in(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.numel(); ++i)
    grad_in[i] = input_cache_[i] > 0.0f ? grad_out[i] : 0.0f;
  return grad_in;
}

std::uint64_t ReLU::flops(const Shape& in) const {
  return tensor::shape_numel(in);
}

util::Json ReLU::spec() const {
  util::Json j = util::Json::object();
  j["kind"] = kind();
  return j;
}

// ---------------------------------------------------------------- MaxPool2d

MaxPool2d::MaxPool2d(std::size_t window) : window_(window) {
  if (window == 0) throw std::invalid_argument("MaxPool2d: window must be > 0");
}

Tensor MaxPool2d::forward(const Tensor& x, bool training) {
  check_rank4(x.shape(), "MaxPool2d");
  const std::size_t batch = x.dim(0), ch = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (h < window_ || w < window_)
    throw std::invalid_argument("MaxPool2d: input smaller than window");
  const std::size_t oh = h / window_, ow = w / window_;
  if (training) {
    in_shape_cache_ = x.shape();
    argmax_cache_.assign(batch * ch * oh * ow, 0);
  }
  Tensor out({batch, ch, oh, ow});
  std::size_t oi = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float* plane = x.data() + (n * ch + c) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++oi) {
          float best = plane[oy * window_ * w + ox * window_];
          std::size_t best_idx = oy * window_ * w + ox * window_;
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx = 0; dx < window_; ++dx) {
              const std::size_t idx =
                  (oy * window_ + dy) * w + ox * window_ + dx;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          out[oi] = best;
          if (training) argmax_cache_[oi] = (n * ch + c) * h * w + best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  Tensor grad_in(in_shape_cache_);
  for (std::size_t i = 0; i < grad_out.numel(); ++i)
    grad_in[argmax_cache_[i]] += grad_out[i];
  return grad_in;
}

Shape MaxPool2d::output_shape(const Shape& in) const {
  if (in.size() != 3)
    throw std::invalid_argument("MaxPool2d::output_shape: expected CHW");
  return {in[0], in[1] / window_, in[2] / window_};
}

std::uint64_t MaxPool2d::flops(const Shape& in) const {
  // One comparison per window cell.
  return tensor::shape_numel(in);
}

util::Json MaxPool2d::spec() const {
  util::Json j = util::Json::object();
  j["kind"] = kind();
  j["window"] = window_;
  return j;
}

// ---------------------------------------------------------------- GlobalAvgPool

Tensor GlobalAvgPool::forward(const Tensor& x, bool training) {
  check_rank4(x.shape(), "GlobalAvgPool");
  const std::size_t batch = x.dim(0), ch = x.dim(1), hw = x.dim(2) * x.dim(3);
  if (training) in_shape_cache_ = x.shape();
  Tensor out({batch, ch});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float* plane = x.data() + (n * ch + c) * hw;
      float acc = 0.0f;
      for (std::size_t i = 0; i < hw; ++i) acc += plane[i];
      out[n * ch + c] = acc / static_cast<float>(hw);
    }
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  const std::size_t batch = in_shape_cache_[0], ch = in_shape_cache_[1];
  const std::size_t hw = in_shape_cache_[2] * in_shape_cache_[3];
  Tensor grad_in(in_shape_cache_);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float g = grad_out[n * ch + c] / static_cast<float>(hw);
      float* plane = grad_in.data() + (n * ch + c) * hw;
      for (std::size_t i = 0; i < hw; ++i) plane[i] = g;
    }
  }
  return grad_in;
}

Shape GlobalAvgPool::output_shape(const Shape& in) const {
  if (in.size() != 3)
    throw std::invalid_argument("GlobalAvgPool::output_shape: expected CHW");
  return {in[0]};
}

std::uint64_t GlobalAvgPool::flops(const Shape& in) const {
  return tensor::shape_numel(in);
}

util::Json GlobalAvgPool::spec() const {
  util::Json j = util::Json::object();
  j["kind"] = kind();
  return j;
}

// ---------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& x, bool training) {
  if (training) in_shape_cache_ = x.shape();
  return x.reshaped({x.dim(0), x.numel() / x.dim(0)});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(in_shape_cache_);
}

Shape Flatten::output_shape(const Shape& in) const {
  return {tensor::shape_numel(in)};
}

util::Json Flatten::spec() const {
  util::Json j = util::Json::object();
  j["kind"] = kind();
  return j;
}

// ---------------------------------------------------------------- Dropout

Dropout::Dropout(double rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  if (rate < 0.0 || rate >= 1.0)
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& x, bool training) {
  // Inference is the identity and touches no state: the layer's RNG stream
  // and mask cache only ever advance in training mode, so serving traffic
  // can never perturb a concurrent or subsequent training pass.
  if (!training) return x;
  if (rate_ == 0.0) {
    mask_cache_ = Tensor();
    return x;
  }
  const float keep = static_cast<float>(1.0 - rate_);
  mask_cache_ = Tensor(x.shape());
  Tensor out(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const float m = rng_.bernoulli(1.0 - rate_) ? 1.0f / keep : 0.0f;
    mask_cache_[i] = m;
    out[i] = x[i] * m;
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (mask_cache_.numel() == 0) return grad_out;
  Tensor grad_in(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.numel(); ++i)
    grad_in[i] = grad_out[i] * mask_cache_[i];
  return grad_in;
}

std::uint64_t Dropout::flops(const Shape& in) const {
  return tensor::shape_numel(in);
}

util::Json Dropout::spec() const {
  util::Json j = util::Json::object();
  j["kind"] = kind();
  j["rate"] = rate_;
  return j;
}

// ---------------------------------------------------------------- BatchNorm2d

BatchNorm2d::BatchNorm2d(std::size_t channels, double momentum, double eps)
    : channels_(channels), momentum_(momentum), eps_(eps) {
  if (channels == 0) throw std::invalid_argument("BatchNorm2d: zero channels");
  gamma_ = Tensor::full({channels}, 1.0f);
  gamma_grad_ = Tensor::zeros({channels});
  beta_ = Tensor::zeros({channels});
  beta_grad_ = Tensor::zeros({channels});
  running_mean_ = Tensor::zeros({channels});
  running_var_ = Tensor::full({channels}, 1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& x, bool training) {
  check_rank4(x.shape(), "BatchNorm2d");
  if (x.dim(1) != channels_)
    throw std::invalid_argument("BatchNorm2d: channel mismatch");
  const std::size_t batch = x.dim(0), hw = x.dim(2) * x.dim(3);
  const std::size_t per_channel = batch * hw;
  Tensor out(x.shape());

  if (!training) {
    // Inference normalizes each sample against the frozen running
    // statistics — per-sample, so the result is batch-size invariant —
    // and writes no caches (running stats are read-only here).
    for (std::size_t c = 0; c < channels_; ++c) {
      const double mean_c = running_mean_[c];
      const double inv_std = 1.0 / std::sqrt(running_var_[c] + eps_);
      const float g = gamma_[c], b = beta_[c];
      for (std::size_t n = 0; n < batch; ++n) {
        const float* in_plane = x.data() + (n * channels_ + c) * hw;
        float* out_plane = out.data() + (n * channels_ + c) * hw;
        for (std::size_t i = 0; i < hw; ++i) {
          const float xhat =
              static_cast<float>((in_plane[i] - mean_c) * inv_std);
          out_plane[i] = g * xhat + b;
        }
      }
    }
    return out;
  }

  in_shape_cache_ = x.shape();
  batch_mean_.assign(channels_, 0.0);
  batch_inv_std_.assign(channels_, 0.0);
  xhat_cache_ = Tensor(x.shape());

  for (std::size_t c = 0; c < channels_; ++c) {
    double acc = 0.0;
    for (std::size_t n = 0; n < batch; ++n) {
      const float* plane = x.data() + (n * channels_ + c) * hw;
      for (std::size_t i = 0; i < hw; ++i) acc += plane[i];
    }
    const double mean_c = acc / static_cast<double>(per_channel);
    double vacc = 0.0;
    for (std::size_t n = 0; n < batch; ++n) {
      const float* plane = x.data() + (n * channels_ + c) * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        const double d = plane[i] - mean_c;
        vacc += d * d;
      }
    }
    const double var_c = vacc / static_cast<double>(per_channel);
    running_mean_[c] = static_cast<float>((1.0 - momentum_) * running_mean_[c] +
                                          momentum_ * mean_c);
    running_var_[c] = static_cast<float>((1.0 - momentum_) * running_var_[c] +
                                         momentum_ * var_c);
    const double inv_std = 1.0 / std::sqrt(var_c + eps_);
    batch_mean_[c] = mean_c;
    batch_inv_std_[c] = inv_std;
    const float g = gamma_[c], b = beta_[c];
    for (std::size_t n = 0; n < batch; ++n) {
      const float* in_plane = x.data() + (n * channels_ + c) * hw;
      float* xhat_plane = xhat_cache_.data() + (n * channels_ + c) * hw;
      float* out_plane = out.data() + (n * channels_ + c) * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        const float xhat =
            static_cast<float>((in_plane[i] - mean_c) * inv_std);
        xhat_plane[i] = xhat;
        out_plane[i] = g * xhat + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  const std::size_t batch = in_shape_cache_[0];
  const std::size_t hw = in_shape_cache_[2] * in_shape_cache_[3];
  const double m = static_cast<double>(batch * hw);
  Tensor grad_in(in_shape_cache_);

  for (std::size_t c = 0; c < channels_; ++c) {
    // Standard batch-norm backward: accumulate the two reduction terms,
    // then distribute.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::size_t n = 0; n < batch; ++n) {
      const float* dy = grad_out.data() + (n * channels_ + c) * hw;
      const float* xh = xhat_cache_.data() + (n * channels_ + c) * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += static_cast<double>(dy[i]) * xh[i];
      }
    }
    gamma_grad_[c] += static_cast<float>(sum_dy_xhat);
    beta_grad_[c] += static_cast<float>(sum_dy);
    const double g = gamma_[c];
    const double inv_std = batch_inv_std_[c];
    for (std::size_t n = 0; n < batch; ++n) {
      const float* dy = grad_out.data() + (n * channels_ + c) * hw;
      const float* xh = xhat_cache_.data() + (n * channels_ + c) * hw;
      float* dx = grad_in.data() + (n * channels_ + c) * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        dx[i] = static_cast<float>(
            g * inv_std *
            (dy[i] - sum_dy / m - xh[i] * sum_dy_xhat / m));
      }
    }
  }
  return grad_in;
}

std::vector<ParamSlot> BatchNorm2d::params() {
  return {{"gamma", &gamma_, &gamma_grad_}, {"beta", &beta_, &beta_grad_}};
}

std::uint64_t BatchNorm2d::flops(const Shape& in) const {
  // Two passes over the data plus normalization: ~4 FLOPs per element.
  return 4 * tensor::shape_numel(in);
}

util::Json BatchNorm2d::spec() const {
  util::Json j = util::Json::object();
  j["kind"] = kind();
  j["channels"] = channels_;
  j["momentum"] = momentum_;
  j["eps"] = eps_;
  return j;
}

util::Json BatchNorm2d::weights() const {
  util::Json j = util::Json::object();
  j["gamma"] = tensor_to_json(gamma_);
  j["beta"] = tensor_to_json(beta_);
  j["running_mean"] = tensor_to_json(running_mean_);
  j["running_var"] = tensor_to_json(running_var_);
  return j;
}

void BatchNorm2d::load_weights(const util::Json& w) {
  gamma_ = tensor_from_json(w.at("gamma"));
  beta_ = tensor_from_json(w.at("beta"));
  running_mean_ = tensor_from_json(w.at("running_mean"));
  running_var_ = tensor_from_json(w.at("running_var"));
  if (gamma_.numel() != channels_)
    throw std::invalid_argument("BatchNorm2d::load_weights: shape mismatch");
}

}  // namespace a4nn::nn
