#include "nn/factory.hpp"

#include <stdexcept>

#include "nn/layers.hpp"
#include "nn/layers_extra.hpp"
#include "nn/phase_block.hpp"

namespace a4nn::nn {

LayerPtr make_layer(const util::Json& spec, util::Rng& rng) {
  const std::string kind = spec.at("kind").as_string();
  auto dim = [&](const char* key) {
    return static_cast<std::size_t>(spec.at(key).as_int());
  };
  if (kind == "conv2d") {
    auto layer = std::make_unique<Conv2d>(dim("in_channels"),
                                          dim("out_channels"), dim("kernel"),
                                          dim("stride"), dim("pad"), rng);
    layer->set_activation(
        activation_from_name(spec.string_or("activation", "none")));
    return layer;
  }
  if (kind == "linear") {
    auto layer = std::make_unique<Linear>(dim("in_features"),
                                          dim("out_features"), rng);
    layer->set_activation(
        activation_from_name(spec.string_or("activation", "none")));
    return layer;
  }
  if (kind == "relu") return std::make_unique<ReLU>();
  if (kind == "identity") return std::make_unique<Identity>();
  if (kind == "maxpool2d") return std::make_unique<MaxPool2d>(dim("window"));
  if (kind == "avgpool2d") return std::make_unique<AvgPool2d>(dim("window"));
  if (kind == "sepconv2d") {
    return std::make_unique<SeparableConv2d>(dim("in_channels"),
                                             dim("out_channels"),
                                             dim("kernel"), dim("pad"), rng);
  }
  if (kind == "gap") return std::make_unique<GlobalAvgPool>();
  if (kind == "flatten") return std::make_unique<Flatten>();
  if (kind == "dropout") {
    return std::make_unique<Dropout>(spec.at("rate").as_number(),
                                     rng.next_u64());
  }
  if (kind == "batchnorm2d") {
    return std::make_unique<BatchNorm2d>(dim("channels"),
                                         spec.number_or("momentum", 0.1),
                                         spec.number_or("eps", 1e-5));
  }
  if (kind == "phase") {
    PhaseSpec ps;
    ps.nodes = dim("nodes");
    for (const auto& b : spec.at("bits").as_array())
      ps.bits.push_back(b.as_bool());
    ps.skip = spec.at("skip").as_bool();
    if (spec.contains("node_ops")) {
      for (const auto& op : spec.at("node_ops").as_array())
        ps.node_ops.push_back(static_cast<NodeOp>(op.as_int()));
    }
    return std::make_unique<PhaseBlock>(std::move(ps), dim("channels"), rng);
  }
  if (kind == "sequential") return make_sequential(spec, rng);
  throw std::invalid_argument("make_layer: unknown layer kind '" + kind + "'");
}

std::unique_ptr<Sequential> make_sequential(const util::Json& spec,
                                            util::Rng& rng) {
  if (spec.at("kind").as_string() != "sequential")
    throw std::invalid_argument("make_sequential: spec is not a sequential");
  auto seq = std::make_unique<Sequential>();
  for (const auto& layer_spec : spec.at("layers").as_array())
    seq->append(make_layer(layer_spec, rng));
  return seq;
}

}  // namespace a4nn::nn
