// Dynamic micro-batching inference engine with SLO-aware admission
// control — the serving half of the in situ loop: the NAS writes champions
// into the data commons, the registry publishes them, and this engine
// answers classification requests against the live generation.
//
// Request path:
//   submit() — admission control under one lock: reject when the bounded
//   queue is full (backpressure), shed when the EMA service-time estimate
//   says the request would land past the latency SLO, else enqueue.
//   batcher thread — collects up to `max_batch` requests, flushing early
//   when the oldest request has waited `max_delay_ms`, and hands the batch
//   to a capacity-bounded worker pool (a slow pool backs the queue up into
//   admission instead of growing it without bound).
//   worker — one forward pass per batch on the shared generation; fused
//   GEMM epilogues and per-thread scratch arenas do the heavy lifting.
//
// Determinism: eval-mode forward is pure and per-sample batch-size
// invariant (see Layer::forward), so a request's scores are bit-identical
// whether it was served alone or packed into a batch of 32, at any worker
// count. Hot-swaps never drop work: a batch keeps a shared_ptr to the
// generation it started on.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/registry.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace a4nn::serve {

struct EngineConfig {
  /// Largest batch one forward pass serves.
  std::size_t max_batch = 8;
  /// Oldest-request age that forces a partial batch out.
  double max_delay_ms = 2.0;
  /// Bounded request queue: submissions beyond this are rejected.
  std::size_t queue_capacity = 256;
  /// Inference workers (0 = run batches inline on the batcher thread).
  std::size_t workers = 1;
  /// Latency SLO driving load shedding; 0 disables shedding.
  double slo_ms = 0.0;
  /// Upper edge of the latency histograms (ms).
  double latency_hi_ms = 250.0;
  /// Instruments land here when set (serve.*); must outlive the engine.
  /// When null the engine keeps a private registry (stats() still works).
  util::metrics::Registry* metrics = nullptr;
};

/// Admission-control verdict for one submission.
enum class Admission {
  kAccepted,  ///< queued; the future will carry a Prediction
  kShed,      ///< would miss the SLO — dropped at admission
  kRejected,  ///< queue full — backpressure
};

const char* admission_name(Admission admission);

struct Prediction {
  std::vector<float> scores;     ///< raw logits, one per class
  std::size_t label = 0;         ///< argmax of scores
  std::uint64_t generation = 0;  ///< registry generation that served it
  double queue_ms = 0.0;         ///< admission → batch dispatch
  double latency_ms = 0.0;       ///< admission → prediction ready
};

struct SubmitResult {
  Admission admission = Admission::kRejected;
  /// Valid only when admission == kAccepted.
  std::future<Prediction> prediction;
};

class InferenceEngine {
 public:
  /// The registry must already hold an active generation (refresh() first)
  /// and must outlive the engine.
  InferenceEngine(ModelRegistry& registry, EngineConfig config);

  /// Drains accepted requests, then stops all threads.
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Submit one image (flattened C*H*W floats matching the champion's
  /// input shape; throws std::invalid_argument on a size mismatch).
  SubmitResult submit(std::vector<float> image);

  /// Hold dispatch: accepted requests stay queued (admission keeps
  /// running) until resume(). Lets tests fill the queue deterministically.
  void pause();
  void resume();

  /// Block until every accepted request has been answered. The engine
  /// must not be paused.
  void drain();

  /// Seed the per-item service-time EMA (ms) that the shedding estimate
  /// uses, instead of waiting for the first measured batch. Deterministic
  /// tests and benches use this to make shed decisions time-independent.
  void hint_service_time_ms(double per_item_ms);

  std::size_t queue_depth() const;

  /// One JSON document: admission counts, batch stats, p50/p95/p99
  /// latency, queue depth, EMA, and the champion identity.
  util::Json stats() const;

  /// Latency quantiles over requests answered since the previous call,
  /// then reset (Histogram::window_snapshot). The drift monitor reads
  /// per-window p99 off this; cumulative stats() latency is unaffected.
  util::metrics::Histogram::WindowSnapshot latency_window();

 private:
  struct Request {
    std::vector<float> image;
    std::promise<Prediction> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void batcher_loop();
  void run_batch(std::vector<Request> batch,
                 std::shared_ptr<ServableGeneration> generation);
  void shutdown();

  ModelRegistry& registry_;
  EngineConfig config_;

  util::metrics::Registry own_metrics_;
  util::metrics::Registry* metrics_ = nullptr;  // external or &own_metrics_

  // Instruments resolved once at construction (references are stable for
  // the registry's lifetime), so the hot path skips the name lookup.
  util::metrics::Counter* c_total_ = nullptr;
  util::metrics::Counter* c_accepted_ = nullptr;
  util::metrics::Counter* c_shed_ = nullptr;
  util::metrics::Counter* c_rejected_ = nullptr;
  util::metrics::Counter* c_ok_ = nullptr;
  util::metrics::Counter* c_batches_ = nullptr;
  util::metrics::Counter* c_items_ = nullptr;
  util::metrics::Histogram* h_latency_ = nullptr;
  util::metrics::Histogram* h_latency_window_ = nullptr;
  util::metrics::Histogram* h_queue_ = nullptr;
  util::metrics::Histogram* h_batch_ = nullptr;
  util::metrics::Gauge* g_depth_ = nullptr;
  util::metrics::Gauge* g_ema_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable cv_;        // batcher wake-ups
  std::condition_variable drained_cv_;
  std::deque<Request> queue_;
  std::size_t in_flight_ = 0;         // requests dispatched, not yet answered
  double ema_item_ms_ = 0.0;
  bool paused_ = false;
  bool stopping_ = false;

  std::unique_ptr<util::ThreadPool> exec_pool_;
  std::thread batcher_;
};

}  // namespace a4nn::serve
