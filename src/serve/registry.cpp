#include "serve/registry.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <vector>

#include "analytics/analyzer.hpp"
#include "util/frame.hpp"
#include "util/log.hpp"
#include "util/trace.hpp"

namespace a4nn::serve {

namespace fs = std::filesystem;

const char* champion_policy_name(ChampionPolicy policy) {
  switch (policy) {
    case ChampionPolicy::kBestFitness:
      return "best-fitness";
    case ChampionPolicy::kMinFlops:
      return "min-flops";
    case ChampionPolicy::kBalanced:
      return "balanced";
    case ChampionPolicy::kMeasuredP99:
      return "measured-p99";
  }
  return "unknown";
}

ChampionPolicy champion_policy_from_name(const std::string& name) {
  if (name == "best-fitness") return ChampionPolicy::kBestFitness;
  if (name == "min-flops") return ChampionPolicy::kMinFlops;
  if (name == "balanced") return ChampionPolicy::kBalanced;
  if (name == "measured-p99") return ChampionPolicy::kMeasuredP99;
  throw std::invalid_argument("unknown champion policy: " + name);
}

ServableGeneration::ServableGeneration(ChampionInfo champion, nn::Model loaded)
    : info(champion),
      model(std::move(loaded)),
      input_shape(model.input_shape()),
      input_numel(tensor::shape_numel(model.input_shape())),
      num_classes(tensor::shape_numel(
          model.trunk().output_shape(model.input_shape()))) {}

tensor::Tensor ServableGeneration::predict(const tensor::Tensor& images) {
  return quantized ? quantized->predict(images) : model.predict(images);
}

namespace {

/// Fitness per doubling of compute: rewards accuracy but charges a log
/// price for FLOPs, so a 2x cheaper model wins unless it costs accuracy.
double balanced_score(const nas::EvaluationRecord& r) {
  return r.fitness / std::log2(2.0 + static_cast<double>(r.flops));
}

/// Strict ordering "a is a better champion than b" under `policy`.
/// Model id breaks final ties so the choice is deterministic.
bool better_champion(ChampionPolicy policy, const nas::EvaluationRecord& a,
                     const nas::EvaluationRecord& b) {
  switch (policy) {
    case ChampionPolicy::kBestFitness:
      if (a.fitness != b.fitness) return a.fitness > b.fitness;
      if (a.flops != b.flops) return a.flops < b.flops;
      break;
    case ChampionPolicy::kMinFlops:
      if (a.flops != b.flops) return a.flops < b.flops;
      if (a.fitness != b.fitness) return a.fitness > b.fitness;
      break;
    case ChampionPolicy::kBalanced: {
      const double sa = balanced_score(a);
      const double sb = balanced_score(b);
      if (sa != sb) return sa > sb;
      break;
    }
    case ChampionPolicy::kMeasuredP99:
      // Ranking happens after probing; here the comparator only fixes a
      // deterministic probe order (the model-id tiebreak below).
      break;
  }
  return a.model_id < b.model_id;
}

/// Move a damaged artifact into <root>/quarantine/<relative path> — same
/// convention as DataCommons::fsck, so one later fsck pass sees both.
void quarantine_artifact(const fs::path& root, const fs::path& file,
                         const std::string& reason) {
  const fs::path rel = fs::relative(file, root);
  const fs::path target = root / "quarantine" / rel;
  std::error_code ec;
  fs::create_directories(target.parent_path(), ec);
  fs::rename(file, target, ec);
  if (ec) fs::remove(file, ec);  // cross-device or racing writer: drop it
  util::log_warn("registry: quarantined ", rel.string(), " (", reason, ")");
}

}  // namespace

ModelRegistry::ModelRegistry(RegistryConfig config)
    : config_(std::move(config)) {
  if (config_.policy == ChampionPolicy::kMeasuredP99 && config_.quantize &&
      !config_.eval_data)
    throw std::invalid_argument(
        "ModelRegistry: measured-p99 with quantization needs an eval_data "
        "provider (calibration batch + accuracy guard)");
}

std::shared_ptr<ServableGeneration> ModelRegistry::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

std::size_t ModelRegistry::quarantined_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quarantined_;
}

bool ModelRegistry::refresh() {
  util::trace::Scope span("registry.refresh", "serve");
  if (config_.metrics) config_.metrics->counter("serve.registry.refreshes").add();
  lineage::DataCommons commons(config_.commons_root);

  // Scan record trails one by one (a corrupt record must cost only itself,
  // not the whole scan the way DataCommons::load_records would).
  std::size_t newly_quarantined = 0;
  std::vector<nas::EvaluationRecord> eligible;
  for (int id : commons.model_ids()) {
    const fs::path record_path = config_.commons_root / "models" /
                                 lineage::model_dir_name(id) / "record.json";
    if (!fs::exists(record_path)) continue;
    nas::EvaluationRecord record;
    try {
      record = nas::EvaluationRecord::from_json(
          util::Json::parse(lineage::read_artifact(record_path)));
    } catch (const std::exception& e) {
      quarantine_artifact(config_.commons_root, record_path, e.what());
      ++newly_quarantined;
      continue;
    }
    if (record.failed) continue;  // no trustworthy fitness
    if (config_.max_flops != 0 && record.flops > config_.max_flops) continue;
    if (commons.snapshot_epochs(id).empty()) continue;  // nothing to load
    eligible.push_back(std::move(record));
  }

  // Champion order: Pareto-front members first (policy-sorted), then the
  // dominated records as deeper fallbacks — a fully corrupt front should
  // still leave something servable.
  std::vector<std::size_t> order = analytics::pareto_indices(eligible);
  const std::size_t front_size = order.size();
  {
    std::vector<char> on_front(eligible.size(), 0);
    for (std::size_t i : order) on_front[i] = 1;
    std::vector<std::size_t> rest;
    for (std::size_t i = 0; i < eligible.size(); ++i)
      if (!on_front[i]) rest.push_back(i);
    auto by_policy = [&](std::size_t a, std::size_t b) {
      return better_champion(config_.policy, eligible[a], eligible[b]);
    };
    std::sort(order.begin(), order.end(), by_policy);
    std::sort(rest.begin(), rest.end(), by_policy);
    order.insert(order.end(), rest.begin(), rest.end());
  }

  if (config_.policy == ChampionPolicy::kMeasuredP99)
    return refresh_measured(commons, eligible, order, front_size,
                            newly_quarantined);

  // Walk candidates best-first, newest snapshot first; quarantine whatever
  // fails its frame or no longer parses and keep walking.
  for (std::size_t idx : order) {
    const nas::EvaluationRecord& record = eligible[idx];
    std::vector<std::size_t> epochs = commons.snapshot_epochs(record.model_id);
    for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (active_ && active_->info.model_id == record.model_id &&
            active_->info.epoch == *it) {
          quarantined_ += newly_quarantined;
          if (config_.metrics && newly_quarantined > 0)
            config_.metrics->counter("serve.registry.quarantined")
                .add(static_cast<double>(newly_quarantined));
          return false;  // champion unchanged; keep the live generation
        }
      }
      try {
        nn::Model model = commons.load_model(record.model_id, *it);
        ChampionInfo info;
        info.model_id = record.model_id;
        info.epoch = *it;
        info.fitness = record.fitness;
        info.flops = record.flops;
        return publish(std::make_shared<ServableGeneration>(
                           info, std::move(model)),
                       newly_quarantined);
      } catch (const std::exception& e) {
        const fs::path snapshot = config_.commons_root / "models" /
                                  lineage::model_dir_name(record.model_id) /
                                  lineage::snapshot_file_name(*it);
        quarantine_artifact(config_.commons_root, snapshot, e.what());
        ++newly_quarantined;
      }
    }
  }

  // Every candidate failed (or the commons is empty): keep serving the
  // previous generation if there is one, never a damaged model.
  std::lock_guard<std::mutex> lock(mutex_);
  quarantined_ += newly_quarantined;
  if (config_.metrics && newly_quarantined > 0)
    config_.metrics->counter("serve.registry.quarantined")
        .add(static_cast<double>(newly_quarantined));
  if (active_) {
    util::log_warn("registry: refresh found no loadable champion; keeping "
                   "generation ", active_->info.generation);
    return false;
  }
  throw std::runtime_error("ModelRegistry: no servable model in " +
                           config_.commons_root.string());
}

namespace {

/// Top-1 accuracy (%) of the int8 variant over a labelled dataset,
/// batched like Model::evaluate so memory stays bounded.
double quantized_accuracy(quant::QuantizedModel& qm, const nn::Dataset& data,
                          std::size_t batch_size = 64) {
  std::size_t correct = 0;
  std::vector<std::size_t> indices;
  for (std::size_t start = 0; start < data.size(); start += batch_size) {
    const std::size_t count = std::min(batch_size, data.size() - start);
    indices.resize(count);
    for (std::size_t i = 0; i < count; ++i) indices[i] = start + i;
    const nn::Dataset::Batch batch = data.gather(indices);
    const tensor::Tensor logits = qm.predict(batch.images);
    const std::size_t classes = logits.dim(1);
    for (std::size_t i = 0; i < count; ++i) {
      const std::span<const float> row =
          logits.span().subspan(i * classes, classes);
      if (tensor::argmax(row) ==
          static_cast<std::size_t>(batch.labels[i]))
        ++correct;
    }
  }
  return data.size() == 0
             ? 0.0
             : 100.0 * static_cast<double>(correct) /
                   static_cast<double>(data.size());
}

}  // namespace

bool ModelRegistry::publish(std::shared_ptr<ServableGeneration> generation,
                            std::size_t newly_quarantined) {
  std::lock_guard<std::mutex> lock(mutex_);
  generation->info.generation = next_generation_++;
  active_ = std::move(generation);
  quarantined_ += newly_quarantined;
  if (config_.metrics) {
    auto& m = *config_.metrics;
    m.counter("serve.registry.publishes").add();
    if (newly_quarantined > 0)
      m.counter("serve.registry.quarantined")
          .add(static_cast<double>(newly_quarantined));
    m.gauge("serve.registry.generation")
        .set(static_cast<double>(active_->info.generation));
    m.gauge("serve.registry.champion_model_id")
        .set(static_cast<double>(active_->info.model_id));
    m.gauge("serve.registry.champion_epoch")
        .set(static_cast<double>(active_->info.epoch));
    m.gauge("serve.registry.champion_fitness").set(active_->info.fitness);
    m.gauge("serve.registry.champion_flops")
        .set(static_cast<double>(active_->info.flops));
    if (config_.policy == ChampionPolicy::kMeasuredP99) {
      m.gauge("serve.registry.champion_p99_ms").set(active_->info.p99_ms);
      m.gauge("serve.registry.champion_quantized")
          .set(active_->info.quantized ? 1.0 : 0.0);
    }
  }
  util::trace::emit_instant(
      "registry.publish", "serve", util::trace::now_us(),
      util::trace::kHostPid, util::trace::current_tid(),
      {{"model_id", static_cast<double>(active_->info.model_id)},
       {"epoch", static_cast<double>(active_->info.epoch)},
       {"generation", static_cast<double>(active_->info.generation)}});
  util::log_info("registry: published model_",
                 active_->info.model_id, " epoch ",
                 active_->info.epoch, " as generation ",
                 active_->info.generation, " (policy ",
                 champion_policy_name(config_.policy),
                 active_->info.quantized ? ", int8" : "", ")");
  return true;
}

bool ModelRegistry::refresh_measured(
    lineage::DataCommons& commons,
    std::vector<nas::EvaluationRecord>& eligible,
    const std::vector<std::size_t>& order, std::size_t front_size,
    std::size_t& newly_quarantined) {
  util::trace::Scope span("registry.refresh_measured", "serve");
  latency::LatencyProbe prober(config_.probe);
  if (config_.probe_hook) prober.set_measure_hook(config_.probe_hook);

  // Evaluation set and calibration batch, loaded lazily (only when
  // quantization actually runs) and shared across candidates with the
  // same input geometry — in practice every model of one commons.
  std::optional<nn::Dataset> eval;
  std::optional<tensor::Tensor> calibration;
  tensor::Shape eval_shape;
  auto ensure_eval = [&](nn::Model& model) {
    const tensor::Shape& shape = model.input_shape();
    if (eval && eval_shape == shape) return;
    const std::size_t classes =
        tensor::shape_numel(model.trunk().output_shape(shape));
    eval.emplace(config_.eval_data(shape, classes));
    eval_shape = shape;
    if (eval->size() == 0)
      throw std::runtime_error(
          "measured-p99: eval_data returned an empty dataset");
    std::vector<std::size_t> indices(
        std::min(config_.calibration, eval->size()));
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    calibration.emplace(eval->gather(indices).images);
  };

  // Probe each front candidate (newest loadable epoch) in float and, when
  // enabled and accurate enough, int8. Dominated records are measured only
  // as a fallback when the entire front failed to load.
  struct Candidate {
    const nas::EvaluationRecord* record = nullptr;
    std::size_t epoch = 0;
    nn::Model model;
    std::optional<quant::QuantizedModel> int8;
    double float_p99 = 0.0;
    double int8_p99 = 0.0;
    double drop_pct = 0.0;
    bool use_int8 = false;
    double p99() const { return use_int8 ? int8_p99 : float_p99; }
    Candidate(nn::Model m) : model(std::move(m)) {}
  };
  std::vector<Candidate> measured;

  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    if (pos >= front_size && !measured.empty()) break;
    const nas::EvaluationRecord& record = eligible[order[pos]];
    std::vector<std::size_t> epochs = commons.snapshot_epochs(record.model_id);
    for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
      try {
        Candidate candidate(commons.load_model(record.model_id, *it));
        candidate.record = &record;
        candidate.epoch = *it;
        candidate.float_p99 = prober.probe(candidate.model).p99_ms;
        if (config_.quantize) {
          ensure_eval(candidate.model);
          quant::QuantizedModel qm =
              quant::QuantizedModel::quantize(candidate.model, *calibration);
          const double float_acc = candidate.model.evaluate(*eval).accuracy;
          const double int8_acc = quantized_accuracy(qm, *eval);
          candidate.drop_pct = float_acc - int8_acc;
          if (config_.metrics)
            config_.metrics->counter("quant.quantizations").add();
          util::trace::emit_instant(
              "quant.quantize", "quant", util::trace::now_us(),
              util::trace::kHostPid, util::trace::current_tid(),
              {{"model_id", static_cast<double>(record.model_id)},
               {"accuracy_drop_pct", candidate.drop_pct}});
          // The epsilon guard is absolute: an int8 variant that costs more
          // accuracy than epsilon_pct is never served, no matter how fast.
          if (candidate.drop_pct <= config_.epsilon_pct) {
            candidate.int8_p99 =
                prober
                    .probe_fn([&qm](const tensor::Tensor& x) { qm.predict(x); },
                              candidate.model.input_shape())
                    .p99_ms;
            candidate.use_int8 = candidate.int8_p99 < candidate.float_p99;
            if (candidate.use_int8) candidate.int8 = std::move(qm);
          } else {
            util::log_warn("registry: model_", record.model_id,
                           " int8 accuracy drop ", candidate.drop_pct,
                           "pp exceeds epsilon ", config_.epsilon_pct,
                           "pp; serving float");
          }
        }
        measured.push_back(std::move(candidate));
        break;  // newest loadable epoch measured; older ones are backups
      } catch (const std::exception& e) {
        const fs::path snapshot = config_.commons_root / "models" /
                                  lineage::model_dir_name(record.model_id) /
                                  lineage::snapshot_file_name(*it);
        quarantine_artifact(config_.commons_root, snapshot, e.what());
        ++newly_quarantined;
      }
    }
  }

  if (measured.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    quarantined_ += newly_quarantined;
    if (config_.metrics && newly_quarantined > 0)
      config_.metrics->counter("serve.registry.quarantined")
          .add(static_cast<double>(newly_quarantined));
    if (active_) {
      util::log_warn("registry: measured refresh found no loadable "
                     "candidate; keeping generation ",
                     active_->info.generation);
      return false;
    }
    throw std::runtime_error("ModelRegistry: no servable model in " +
                             config_.commons_root.string());
  }

  // Selection: candidates whose measured p99 meets the SLO outrank those
  // that miss it. Under the SLO the search's fitness decides (p99 breaks
  // ties); when everyone misses, least-bad latency wins. Model id makes
  // the final order deterministic.
  auto better = [&](const Candidate& a, const Candidate& b) {
    const bool a_ok = config_.slo_ms <= 0.0 || a.p99() <= config_.slo_ms;
    const bool b_ok = config_.slo_ms <= 0.0 || b.p99() <= config_.slo_ms;
    if (a_ok != b_ok) return a_ok;
    if (a_ok) {
      if (a.record->fitness != b.record->fitness)
        return a.record->fitness > b.record->fitness;
      if (a.p99() != b.p99()) return a.p99() < b.p99();
    } else {
      if (a.p99() != b.p99()) return a.p99() < b.p99();
      if (a.record->fitness != b.record->fitness)
        return a.record->fitness > b.record->fitness;
    }
    return a.record->model_id < b.record->model_id;
  };
  Candidate& champion =
      *std::min_element(measured.begin(), measured.end(), better);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (active_ && active_->info.model_id == champion.record->model_id &&
        active_->info.epoch == champion.epoch &&
        active_->info.quantized == champion.use_int8) {
      quarantined_ += newly_quarantined;
      if (config_.metrics && newly_quarantined > 0)
        config_.metrics->counter("serve.registry.quarantined")
            .add(static_cast<double>(newly_quarantined));
      return false;  // same champion, same variant: keep the generation
    }
  }

  ChampionInfo info;
  info.model_id = champion.record->model_id;
  info.epoch = champion.epoch;
  info.fitness = champion.record->fitness;
  info.flops = champion.record->flops;
  info.p99_ms = champion.p99();
  info.quantized = champion.use_int8;
  info.accuracy_drop_pct = champion.drop_pct;
  auto generation =
      std::make_shared<ServableGeneration>(info, std::move(champion.model));
  if (champion.use_int8) generation->quantized = std::move(champion.int8);
  return publish(std::move(generation), newly_quarantined);
}

}  // namespace a4nn::serve
