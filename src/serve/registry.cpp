#include "serve/registry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "analytics/analyzer.hpp"
#include "util/frame.hpp"
#include "util/log.hpp"
#include "util/trace.hpp"

namespace a4nn::serve {

namespace fs = std::filesystem;

const char* champion_policy_name(ChampionPolicy policy) {
  switch (policy) {
    case ChampionPolicy::kBestFitness:
      return "best-fitness";
    case ChampionPolicy::kMinFlops:
      return "min-flops";
    case ChampionPolicy::kBalanced:
      return "balanced";
  }
  return "unknown";
}

ChampionPolicy champion_policy_from_name(const std::string& name) {
  if (name == "best-fitness") return ChampionPolicy::kBestFitness;
  if (name == "min-flops") return ChampionPolicy::kMinFlops;
  if (name == "balanced") return ChampionPolicy::kBalanced;
  throw std::invalid_argument("unknown champion policy: " + name);
}

ServableGeneration::ServableGeneration(ChampionInfo champion, nn::Model loaded)
    : info(champion),
      model(std::move(loaded)),
      input_shape(model.input_shape()),
      input_numel(tensor::shape_numel(model.input_shape())),
      num_classes(tensor::shape_numel(
          model.trunk().output_shape(model.input_shape()))) {}

namespace {

/// Fitness per doubling of compute: rewards accuracy but charges a log
/// price for FLOPs, so a 2x cheaper model wins unless it costs accuracy.
double balanced_score(const nas::EvaluationRecord& r) {
  return r.fitness / std::log2(2.0 + static_cast<double>(r.flops));
}

/// Strict ordering "a is a better champion than b" under `policy`.
/// Model id breaks final ties so the choice is deterministic.
bool better_champion(ChampionPolicy policy, const nas::EvaluationRecord& a,
                     const nas::EvaluationRecord& b) {
  switch (policy) {
    case ChampionPolicy::kBestFitness:
      if (a.fitness != b.fitness) return a.fitness > b.fitness;
      if (a.flops != b.flops) return a.flops < b.flops;
      break;
    case ChampionPolicy::kMinFlops:
      if (a.flops != b.flops) return a.flops < b.flops;
      if (a.fitness != b.fitness) return a.fitness > b.fitness;
      break;
    case ChampionPolicy::kBalanced: {
      const double sa = balanced_score(a);
      const double sb = balanced_score(b);
      if (sa != sb) return sa > sb;
      break;
    }
  }
  return a.model_id < b.model_id;
}

/// Move a damaged artifact into <root>/quarantine/<relative path> — same
/// convention as DataCommons::fsck, so one later fsck pass sees both.
void quarantine_artifact(const fs::path& root, const fs::path& file,
                         const std::string& reason) {
  const fs::path rel = fs::relative(file, root);
  const fs::path target = root / "quarantine" / rel;
  std::error_code ec;
  fs::create_directories(target.parent_path(), ec);
  fs::rename(file, target, ec);
  if (ec) fs::remove(file, ec);  // cross-device or racing writer: drop it
  util::log_warn("registry: quarantined ", rel.string(), " (", reason, ")");
}

}  // namespace

ModelRegistry::ModelRegistry(RegistryConfig config)
    : config_(std::move(config)) {}

std::shared_ptr<ServableGeneration> ModelRegistry::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

std::size_t ModelRegistry::quarantined_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quarantined_;
}

bool ModelRegistry::refresh() {
  util::trace::Scope span("registry.refresh", "serve");
  if (config_.metrics) config_.metrics->counter("serve.registry.refreshes").add();
  lineage::DataCommons commons(config_.commons_root);

  // Scan record trails one by one (a corrupt record must cost only itself,
  // not the whole scan the way DataCommons::load_records would).
  std::size_t newly_quarantined = 0;
  std::vector<nas::EvaluationRecord> eligible;
  for (int id : commons.model_ids()) {
    const fs::path record_path = config_.commons_root / "models" /
                                 lineage::model_dir_name(id) / "record.json";
    if (!fs::exists(record_path)) continue;
    nas::EvaluationRecord record;
    try {
      record = nas::EvaluationRecord::from_json(
          util::Json::parse(lineage::read_artifact(record_path)));
    } catch (const std::exception& e) {
      quarantine_artifact(config_.commons_root, record_path, e.what());
      ++newly_quarantined;
      continue;
    }
    if (record.failed) continue;  // no trustworthy fitness
    if (config_.max_flops != 0 && record.flops > config_.max_flops) continue;
    if (commons.snapshot_epochs(id).empty()) continue;  // nothing to load
    eligible.push_back(std::move(record));
  }

  // Champion order: Pareto-front members first (policy-sorted), then the
  // dominated records as deeper fallbacks — a fully corrupt front should
  // still leave something servable.
  std::vector<std::size_t> order = analytics::pareto_indices(eligible);
  {
    std::vector<char> on_front(eligible.size(), 0);
    for (std::size_t i : order) on_front[i] = 1;
    std::vector<std::size_t> rest;
    for (std::size_t i = 0; i < eligible.size(); ++i)
      if (!on_front[i]) rest.push_back(i);
    auto by_policy = [&](std::size_t a, std::size_t b) {
      return better_champion(config_.policy, eligible[a], eligible[b]);
    };
    std::sort(order.begin(), order.end(), by_policy);
    std::sort(rest.begin(), rest.end(), by_policy);
    order.insert(order.end(), rest.begin(), rest.end());
  }

  // Walk candidates best-first, newest snapshot first; quarantine whatever
  // fails its frame or no longer parses and keep walking.
  for (std::size_t idx : order) {
    const nas::EvaluationRecord& record = eligible[idx];
    std::vector<std::size_t> epochs = commons.snapshot_epochs(record.model_id);
    for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (active_ && active_->info.model_id == record.model_id &&
            active_->info.epoch == *it) {
          quarantined_ += newly_quarantined;
          if (config_.metrics && newly_quarantined > 0)
            config_.metrics->counter("serve.registry.quarantined")
                .add(static_cast<double>(newly_quarantined));
          return false;  // champion unchanged; keep the live generation
        }
      }
      try {
        nn::Model model = commons.load_model(record.model_id, *it);
        ChampionInfo info;
        info.model_id = record.model_id;
        info.epoch = *it;
        info.fitness = record.fitness;
        info.flops = record.flops;
        auto generation = std::make_shared<ServableGeneration>(
            info, std::move(model));
        std::lock_guard<std::mutex> lock(mutex_);
        generation->info.generation = next_generation_++;
        active_ = std::move(generation);
        quarantined_ += newly_quarantined;
        if (config_.metrics) {
          auto& m = *config_.metrics;
          m.counter("serve.registry.publishes").add();
          if (newly_quarantined > 0)
            m.counter("serve.registry.quarantined")
                .add(static_cast<double>(newly_quarantined));
          m.gauge("serve.registry.generation")
              .set(static_cast<double>(active_->info.generation));
          m.gauge("serve.registry.champion_model_id")
              .set(static_cast<double>(active_->info.model_id));
          m.gauge("serve.registry.champion_epoch")
              .set(static_cast<double>(active_->info.epoch));
          m.gauge("serve.registry.champion_fitness").set(active_->info.fitness);
          m.gauge("serve.registry.champion_flops")
              .set(static_cast<double>(active_->info.flops));
        }
        util::trace::emit_instant(
            "registry.publish", "serve", util::trace::now_us(),
            util::trace::kHostPid, util::trace::current_tid(),
            {{"model_id", static_cast<double>(active_->info.model_id)},
             {"epoch", static_cast<double>(active_->info.epoch)},
             {"generation", static_cast<double>(active_->info.generation)}});
        util::log_info("registry: published model_",
                       active_->info.model_id, " epoch ",
                       active_->info.epoch, " as generation ",
                       active_->info.generation, " (policy ",
                       champion_policy_name(config_.policy), ")");
        return true;
      } catch (const std::exception& e) {
        const fs::path snapshot = config_.commons_root / "models" /
                                  lineage::model_dir_name(record.model_id) /
                                  lineage::snapshot_file_name(*it);
        quarantine_artifact(config_.commons_root, snapshot, e.what());
        ++newly_quarantined;
      }
    }
  }

  // Every candidate failed (or the commons is empty): keep serving the
  // previous generation if there is one, never a damaged model.
  std::lock_guard<std::mutex> lock(mutex_);
  quarantined_ += newly_quarantined;
  if (config_.metrics && newly_quarantined > 0)
    config_.metrics->counter("serve.registry.quarantined")
        .add(static_cast<double>(newly_quarantined));
  if (active_) {
    util::log_warn("registry: refresh found no loadable champion; keeping "
                   "generation ", active_->info.generation);
    return false;
  }
  throw std::runtime_error("ModelRegistry: no servable model in " +
                           config_.commons_root.string());
}

}  // namespace a4nn::serve
