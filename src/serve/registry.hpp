// Model registry for in situ serving: scans a lineage DataCommons for
// trained networks, picks a champion off the Pareto front (max fitness,
// min FLOPs) under a configurable policy, loads its newest framed weight
// snapshot, and publishes it as an immutable generation. refresh() can run
// while traffic flows: generations are handed out as shared_ptr, so a
// hot-swap retires the old model only after the last in-flight batch
// releases it — no request is ever dropped by an upgrade.
//
// Corruption is survived, not propagated: a snapshot or record whose
// integrity frame fails (util::FrameError) or no longer parses is moved to
// <root>/quarantine/<relative path> — the same convention as
// DataCommons::fsck — and the registry falls back to an older epoch, then
// to the next policy candidate, and finally keeps the previously published
// generation rather than serve a damaged model.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "latency/probe.hpp"
#include "lineage/tracker.hpp"
#include "nn/dataset.hpp"
#include "nn/model.hpp"
#include "quant/quantized_model.hpp"
#include "util/metrics.hpp"

namespace a4nn::serve {

/// How to order the Pareto-front candidates when picking the champion.
enum class ChampionPolicy {
  kBestFitness,  ///< highest fitness; FLOPs break ties
  kMinFlops,     ///< cheapest forward pass; fitness breaks ties
  kBalanced,     ///< fitness per FLOPs doubling: fitness / log2(2 + flops)
  /// Probe every front candidate on THIS host at the serving micro-batch
  /// geometry and pick by the measured p99 under the SLO — no analytic
  /// proxy. With quantization enabled each candidate is considered in
  /// float and int8 form; int8 is served only when its accuracy stays
  /// within epsilon of float on the evaluation set.
  kMeasuredP99,
};

const char* champion_policy_name(ChampionPolicy policy);
/// Parse "best-fitness" | "min-flops" | "balanced" | "measured-p99";
/// throws on anything else.
ChampionPolicy champion_policy_from_name(const std::string& name);

struct RegistryConfig {
  std::filesystem::path commons_root;
  ChampionPolicy policy = ChampionPolicy::kBestFitness;
  /// When nonzero, only candidates whose forward FLOPs-per-image fit the
  /// budget are considered (deployment-side constraint; the Pareto front
  /// is recomputed over the eligible set).
  std::uint64_t max_flops = 0;
  /// Counters/gauges land here when set (serve.registry.*). Must outlive
  /// the registry. Nullable.
  util::metrics::Registry* metrics = nullptr;

  // --- measured-p99 policy knobs (ignored by the analytic policies) ----
  /// Latency SLO (ms per image) the measured p99 is held against; 0 means
  /// no SLO filter — the lowest-p99 candidate simply wins ties later.
  double slo_ms = 0.0;
  /// Also build an int8 post-training-quantized variant per candidate and
  /// serve it when it is both faster and accurate enough.
  bool quantize = false;
  /// Largest absolute accuracy drop (percentage points) the int8 variant
  /// may cost before the registry falls back to float for that candidate.
  double epsilon_pct = 0.5;
  /// Calibration samples (the first N of eval_data, deterministic).
  std::size_t calibration = 32;
  /// Probe geometry; defaults mirror the serving engine's micro-batch.
  latency::ProbeConfig probe = {};
  /// Timing hook forwarded to the probe (LatencyProbe::set_measure_hook):
  /// lets tests pin the measured milliseconds instead of reading a clock.
  latency::LatencyProbe::MeasureHook probe_hook = {};
  /// Labelled evaluation set provider for a given image shape (C,H,W) and
  /// class count: supplies the calibration batch and the float-vs-int8
  /// accuracy guard. Required when quantize is true. Candidates sharing a
  /// geometry share one dataset per refresh.
  std::function<nn::Dataset(const tensor::Shape& image_shape,
                            std::size_t num_classes)>
      eval_data = {};
};

/// Identity of a published champion.
struct ChampionInfo {
  int model_id = -1;
  std::size_t epoch = 0;     ///< snapshot epoch the weights came from
  double fitness = 0.0;      ///< fitness recorded by the NAS (%)
  std::uint64_t flops = 0;   ///< forward FLOPs per image
  std::uint64_t generation = 0;  ///< 1-based publish counter
  // measured-p99 extras (zero / false under the analytic policies):
  double p99_ms = 0.0;       ///< probed p99 of the served variant (ms/image)
  bool quantized = false;    ///< serving the int8 variant
  double accuracy_drop_pct = 0.0;  ///< float minus int8 accuracy, when probed
};

/// One immutable published generation. Eval-mode forward is pure (see
/// Layer::forward), so a single instance is shared by every worker thread.
struct ServableGeneration {
  ChampionInfo info;
  nn::Model model;
  /// Set when the champion serves int8 (info.quantized); the float model
  /// above is always kept — shape metadata and fallback come from it.
  std::optional<quant::QuantizedModel> quantized;
  tensor::Shape input_shape;   ///< one image (C,H,W)
  std::size_t input_numel = 0;
  std::size_t num_classes = 0;

  ServableGeneration(ChampionInfo champion, nn::Model loaded);

  /// Forward a batch through whichever variant this generation serves.
  tensor::Tensor predict(const tensor::Tensor& images);
};

class ModelRegistry {
 public:
  /// Does not touch the filesystem; call refresh() to load a champion.
  explicit ModelRegistry(RegistryConfig config);

  /// Re-scan the commons and publish the current champion. Returns true
  /// when a new generation was published (first load, or the champion
  /// identity changed), false when the active generation already matches.
  /// Corrupt artifacts are quarantined and skipped; if every candidate is
  /// damaged the previous generation stays active (false), and if there is
  /// no previous generation either, throws std::runtime_error.
  bool refresh();

  /// The active generation (nullptr before the first successful refresh).
  /// The returned pointer keeps the generation alive across hot-swaps.
  /// Non-const only because Layer::forward is non-const; treat the
  /// generation as immutable — eval-mode forward writes no member state.
  std::shared_ptr<ServableGeneration> active() const;

  /// Artifacts quarantined by this registry since construction.
  std::size_t quarantined_count() const;

  const RegistryConfig& config() const { return config_; }

 private:
  /// measured-p99 refresh: probe the front candidates (falling back to the
  /// best dominated record when the whole front is damaged) and publish by
  /// measured latency. `order` is front members first, fallbacks after;
  /// `front_size` is where the front ends.
  bool refresh_measured(lineage::DataCommons& commons,
                        std::vector<nas::EvaluationRecord>& eligible,
                        const std::vector<std::size_t>& order,
                        std::size_t front_size,
                        std::size_t& newly_quarantined);
  /// Publish `generation` under the lock, bump counters, emit traces.
  bool publish(std::shared_ptr<ServableGeneration> generation,
               std::size_t newly_quarantined);

  RegistryConfig config_;
  mutable std::mutex mutex_;
  std::shared_ptr<ServableGeneration> active_;
  std::uint64_t next_generation_ = 1;
  std::size_t quarantined_ = 0;
};

}  // namespace a4nn::serve
