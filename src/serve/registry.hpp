// Model registry for in situ serving: scans a lineage DataCommons for
// trained networks, picks a champion off the Pareto front (max fitness,
// min FLOPs) under a configurable policy, loads its newest framed weight
// snapshot, and publishes it as an immutable generation. refresh() can run
// while traffic flows: generations are handed out as shared_ptr, so a
// hot-swap retires the old model only after the last in-flight batch
// releases it — no request is ever dropped by an upgrade.
//
// Corruption is survived, not propagated: a snapshot or record whose
// integrity frame fails (util::FrameError) or no longer parses is moved to
// <root>/quarantine/<relative path> — the same convention as
// DataCommons::fsck — and the registry falls back to an older epoch, then
// to the next policy candidate, and finally keeps the previously published
// generation rather than serve a damaged model.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>

#include "lineage/tracker.hpp"
#include "nn/model.hpp"
#include "util/metrics.hpp"

namespace a4nn::serve {

/// How to order the Pareto-front candidates when picking the champion.
enum class ChampionPolicy {
  kBestFitness,  ///< highest fitness; FLOPs break ties
  kMinFlops,     ///< cheapest forward pass; fitness breaks ties
  kBalanced,     ///< fitness per FLOPs doubling: fitness / log2(2 + flops)
};

const char* champion_policy_name(ChampionPolicy policy);
/// Parse "best-fitness" | "min-flops" | "balanced"; throws on anything else.
ChampionPolicy champion_policy_from_name(const std::string& name);

struct RegistryConfig {
  std::filesystem::path commons_root;
  ChampionPolicy policy = ChampionPolicy::kBestFitness;
  /// When nonzero, only candidates whose forward FLOPs-per-image fit the
  /// budget are considered (deployment-side constraint; the Pareto front
  /// is recomputed over the eligible set).
  std::uint64_t max_flops = 0;
  /// Counters/gauges land here when set (serve.registry.*). Must outlive
  /// the registry. Nullable.
  util::metrics::Registry* metrics = nullptr;
};

/// Identity of a published champion.
struct ChampionInfo {
  int model_id = -1;
  std::size_t epoch = 0;     ///< snapshot epoch the weights came from
  double fitness = 0.0;      ///< fitness recorded by the NAS (%)
  std::uint64_t flops = 0;   ///< forward FLOPs per image
  std::uint64_t generation = 0;  ///< 1-based publish counter
};

/// One immutable published generation. Eval-mode forward is pure (see
/// Layer::forward), so a single instance is shared by every worker thread.
struct ServableGeneration {
  ChampionInfo info;
  nn::Model model;
  tensor::Shape input_shape;   ///< one image (C,H,W)
  std::size_t input_numel = 0;
  std::size_t num_classes = 0;

  ServableGeneration(ChampionInfo champion, nn::Model loaded);
};

class ModelRegistry {
 public:
  /// Does not touch the filesystem; call refresh() to load a champion.
  explicit ModelRegistry(RegistryConfig config);

  /// Re-scan the commons and publish the current champion. Returns true
  /// when a new generation was published (first load, or the champion
  /// identity changed), false when the active generation already matches.
  /// Corrupt artifacts are quarantined and skipped; if every candidate is
  /// damaged the previous generation stays active (false), and if there is
  /// no previous generation either, throws std::runtime_error.
  bool refresh();

  /// The active generation (nullptr before the first successful refresh).
  /// The returned pointer keeps the generation alive across hot-swaps.
  /// Non-const only because Layer::forward is non-const; treat the
  /// generation as immutable — eval-mode forward writes no member state.
  std::shared_ptr<ServableGeneration> active() const;

  /// Artifacts quarantined by this registry since construction.
  std::size_t quarantined_count() const;

  const RegistryConfig& config() const { return config_; }

 private:
  RegistryConfig config_;
  mutable std::mutex mutex_;
  std::shared_ptr<ServableGeneration> active_;
  std::uint64_t next_generation_ = 1;
  std::size_t quarantined_ = 0;
};

}  // namespace a4nn::serve
