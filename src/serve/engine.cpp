#include "serve/engine.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "tensor/scratch.hpp"
#include "util/trace.hpp"

namespace a4nn::serve {

using Clock = std::chrono::steady_clock;

namespace {

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

// Per-thread scratch kept across batches (floats): 4 MiB covers every
// steady-state micro-batch by a wide margin while bounding long-run RSS.
constexpr std::size_t kScratchTrimFloats = 1u << 20;

}  // namespace

const char* admission_name(Admission admission) {
  switch (admission) {
    case Admission::kAccepted:
      return "accepted";
    case Admission::kShed:
      return "shed";
    case Admission::kRejected:
      return "rejected";
  }
  return "unknown";
}

InferenceEngine::InferenceEngine(ModelRegistry& registry, EngineConfig config)
    : registry_(registry), config_(config) {
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (!registry_.active())
    throw std::runtime_error(
        "InferenceEngine: registry has no active generation (refresh first)");
  metrics_ = config_.metrics != nullptr ? config_.metrics : &own_metrics_;
  c_total_ = &metrics_->counter("serve.requests_total");
  c_accepted_ = &metrics_->counter("serve.requests_accepted");
  c_shed_ = &metrics_->counter("serve.requests_shed");
  c_rejected_ = &metrics_->counter("serve.requests_rejected");
  c_ok_ = &metrics_->counter("serve.requests_ok");
  c_batches_ = &metrics_->counter("serve.batches_total");
  c_items_ = &metrics_->counter("serve.batch_items");
  h_latency_ = &metrics_->histogram("serve.latency_ms", 0.0,
                                    config_.latency_hi_ms, 256);
  h_latency_window_ = &metrics_->histogram("serve.latency_window_ms", 0.0,
                                           config_.latency_hi_ms, 256);
  h_queue_ = &metrics_->histogram("serve.queue_ms", 0.0, config_.latency_hi_ms,
                                  256);
  h_batch_ = &metrics_->histogram("serve.batch_size", 0.0,
                                  static_cast<double>(config_.max_batch),
                                  std::max<std::size_t>(config_.max_batch, 1));
  g_depth_ = &metrics_->gauge("serve.queue_depth");
  g_ema_ = &metrics_->gauge("serve.ema_item_ms");
  // A bounded execution queue is the backpressure link: when every worker
  // is busy and the pending slots fill, the batcher blocks, the request
  // queue backs up, and admission starts rejecting/shedding.
  exec_pool_ = std::make_unique<util::ThreadPool>(
      config_.workers, config_.workers == 0 ? 0 : config_.workers * 2);
  batcher_ = std::thread([this] { batcher_loop(); });
}

InferenceEngine::~InferenceEngine() { shutdown(); }

void InferenceEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    paused_ = false;  // a paused engine still drains on shutdown
  }
  cv_.notify_all();
  batcher_.join();
  exec_pool_.reset();  // pool destructor runs every queued batch
}

SubmitResult InferenceEngine::submit(std::vector<float> image) {
  auto generation = registry_.active();
  if (image.size() != generation->input_numel)
    throw std::invalid_argument(
        "InferenceEngine::submit: image has " + std::to_string(image.size()) +
        " floats, champion expects " +
        std::to_string(generation->input_numel));
  SubmitResult result;
  const auto now = Clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_)
      throw std::runtime_error("InferenceEngine::submit after shutdown");
    c_total_->add();
    if (queue_.size() >= config_.queue_capacity) {
      c_rejected_->add();
      result.admission = Admission::kRejected;
      return result;
    }
    if (config_.slo_ms > 0.0 && ema_item_ms_ > 0.0) {
      // Where would this request land? Everything ahead of it (queued and
      // in flight) plus itself at the EMA per-item cost, plus the worst
      // batching delay. Past the SLO → shed now, cheaply, instead of
      // serving a late answer.
      const double estimate_ms =
          static_cast<double>(queue_.size() + in_flight_ + 1) * ema_item_ms_ +
          config_.max_delay_ms;
      if (estimate_ms > config_.slo_ms) {
        c_shed_->add();
        util::trace::emit_instant(
            "serve.shed", "serve", util::trace::now_us(),
            util::trace::kHostPid, util::trace::current_tid(),
            {{"estimate_ms", estimate_ms}, {"slo_ms", config_.slo_ms}});
        result.admission = Admission::kShed;
        return result;
      }
    }
    Request request;
    request.image = std::move(image);
    request.enqueued = now;
    result.prediction = request.promise.get_future();
    queue_.push_back(std::move(request));
    c_accepted_->add();
    g_depth_->set(static_cast<double>(queue_.size()));
    result.admission = Admission::kAccepted;
  }
  cv_.notify_one();
  return result;
}

void InferenceEngine::batcher_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] {
        return stopping_ || (!queue_.empty() && !paused_);
      });
      if (queue_.empty()) return;  // stopping and fully dispatched
      if (!stopping_) {
        // Fill the batch or flush when the oldest request has waited long
        // enough — the classic micro-batching latency/throughput trade.
        const auto deadline =
            queue_.front().enqueued +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    config_.max_delay_ms));
        cv_.wait_until(lock, deadline, [this] {
          return stopping_ || paused_ || queue_.size() >= config_.max_batch;
        });
        if (paused_ && !stopping_) continue;  // hold dispatch, keep queueing
      }
      const std::size_t take = std::min(queue_.size(), config_.max_batch);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ += take;
      g_depth_->set(static_cast<double>(queue_.size()));
    }
    // The batch pins the generation it started on: a concurrent hot-swap
    // retires the old model only after this shared_ptr dies.
    auto generation = registry_.active();
    exec_pool_->submit(
        [this, generation, b = std::move(batch)]() mutable {
          run_batch(std::move(b), std::move(generation));
        });
  }
}

void InferenceEngine::run_batch(std::vector<Request> batch,
                                std::shared_ptr<ServableGeneration> generation) {
  util::trace::Scope span("serve.batch", "serve");
  const auto dispatched = Clock::now();
  const std::size_t count = batch.size();
  span.arg("batch", static_cast<double>(count));
  span.arg("generation", static_cast<double>(generation->info.generation));
  try {
    tensor::Shape shape;
    shape.reserve(1 + generation->input_shape.size());
    shape.push_back(count);
    shape.insert(shape.end(), generation->input_shape.begin(),
                 generation->input_shape.end());
    tensor::Tensor images(std::move(shape));
    for (std::size_t i = 0; i < count; ++i)
      std::memcpy(images.data() + i * generation->input_numel,
                  batch[i].image.data(),
                  generation->input_numel * sizeof(float));
    const tensor::Tensor logits = generation->predict(images);
    const auto done = Clock::now();
    const std::size_t classes = generation->num_classes;
    for (std::size_t i = 0; i < count; ++i) {
      Prediction p;
      const float* row = logits.data() + i * classes;
      p.scores.assign(row, row + classes);
      p.label = tensor::argmax(std::span<const float>(row, classes));
      p.generation = generation->info.generation;
      p.queue_ms = ms_between(batch[i].enqueued, dispatched);
      p.latency_ms = ms_between(batch[i].enqueued, done);
      h_queue_->observe(p.queue_ms);
      h_latency_->observe(p.latency_ms);
      h_latency_window_->observe(p.latency_ms);
      batch[i].promise.set_value(std::move(p));
    }
    c_ok_->add(static_cast<double>(count));
    c_batches_->add();
    c_items_->add(static_cast<double>(count));
    h_batch_->observe(static_cast<double>(count));
    const double per_item_ms =
        ms_between(dispatched, done) / static_cast<double>(count);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ema_item_ms_ = ema_item_ms_ == 0.0
                         ? per_item_ms
                         : 0.2 * per_item_ms + 0.8 * ema_item_ms_;
      g_ema_->set(ema_item_ms_);
    }
  } catch (...) {
    for (auto& request : batch)
      request.promise.set_exception(std::current_exception());
  }
  // Batch boundary: cap this exec thread's scratch at a soft watermark so
  // one outlier batch shape cannot pin its peak working set in a process
  // that serves for days. Steady-state batches fit the kept block, so the
  // common case never reallocates.
  tensor::ScratchArena::tls().trim(kScratchTrimFloats);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    in_flight_ -= count;
    if (queue_.empty() && in_flight_ == 0) drained_cv_.notify_all();
  }
}

void InferenceEngine::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void InferenceEngine::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

void InferenceEngine::drain() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    drained_cv_.wait(lock,
                     [this] { return queue_.empty() && in_flight_ == 0; });
  }
  exec_pool_->wait_idle();
}

void InferenceEngine::hint_service_time_ms(double per_item_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  ema_item_ms_ = per_item_ms;
  g_ema_->set(ema_item_ms_);
}

std::size_t InferenceEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

util::metrics::Histogram::WindowSnapshot InferenceEngine::latency_window() {
  return h_latency_window_->window_snapshot();
}

util::Json InferenceEngine::stats() const {
  util::Json requests = util::Json::object();
  requests["total"] = c_total_->value();
  requests["accepted"] = c_accepted_->value();
  requests["ok"] = c_ok_->value();
  requests["shed"] = c_shed_->value();
  requests["rejected"] = c_rejected_->value();
  util::Json batches = util::Json::object();
  batches["count"] = c_batches_->value();
  batches["items"] = c_items_->value();
  batches["mean_size"] =
      c_batches_->value() > 0.0 ? c_items_->value() / c_batches_->value() : 0.0;
  util::Json latency = util::Json::object();
  latency["p50"] = h_latency_->quantile(0.50);
  latency["p95"] = h_latency_->quantile(0.95);
  latency["p99"] = h_latency_->quantile(0.99);
  util::Json queue_wait = util::Json::object();
  queue_wait["p50"] = h_queue_->quantile(0.50);
  queue_wait["p95"] = h_queue_->quantile(0.95);
  queue_wait["p99"] = h_queue_->quantile(0.99);
  util::Json j = util::Json::object();
  j["requests"] = std::move(requests);
  j["batches"] = std::move(batches);
  j["latency_ms"] = std::move(latency);
  j["queue_ms"] = std::move(queue_wait);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    j["queue_depth"] = static_cast<double>(queue_.size());
    j["ema_item_ms"] = ema_item_ms_;
  }
  if (auto generation = registry_.active()) {
    util::Json champion = util::Json::object();
    champion["model_id"] = static_cast<double>(generation->info.model_id);
    champion["epoch"] = static_cast<double>(generation->info.epoch);
    champion["generation"] =
        static_cast<double>(generation->info.generation);
    champion["fitness"] = generation->info.fitness;
    champion["flops"] = static_cast<double>(generation->info.flops);
    if (generation->info.p99_ms > 0.0)
      champion["probed_p99_ms"] = generation->info.p99_ms;
    if (generation->info.quantized) champion["quantized"] = true;
    j["champion"] = std::move(champion);
  }
  return j;
}

}  // namespace a4nn::serve
