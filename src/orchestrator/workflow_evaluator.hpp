// The evaluator that the A4NN workflow (and the standalone baseline) plug
// into NSGA-Net: for each generation it builds one training job per
// genome, hands the batch to the resource manager (FIFO over simulated
// GPUs), stamps placement/timing into the records, and forwards every
// record trail to the lineage tracker.
#pragma once

#include <atomic>
#include <map>
#include <stdexcept>

#include "latency/probe.hpp"
#include "nas/memo.hpp"
#include "nas/search.hpp"
#include "orchestrator/training_loop.hpp"
#include "sched/resource_manager.hpp"

namespace a4nn::orchestrator {

/// Thrown when a configured mid-run crash point is reached (fault-injection
/// testing): the lineage tracker has been sealed, so the commons holds
/// exactly the records flushed before the "death".
struct WorkflowInterrupted : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class WorkflowEvaluator : public nas::Evaluator {
 public:
  /// All referenced objects must outlive the evaluator. `lineage` may be
  /// null. `space` defines genome decoding; `seed` derives per-model
  /// weight-init streams.
  WorkflowEvaluator(const TrainingLoop& loop, sched::ResourceManager& cluster,
                    nas::SearchSpaceConfig space, std::uint64_t seed,
                    lineage::LineageTracker* lineage = nullptr);

  /// Resume support: record trails from a previous (possibly interrupted)
  /// run of the *same* configuration. When the search re-requests a
  /// model whose id AND genome match a preloaded record, the stored result
  /// is reused instead of retraining — deterministic seeding guarantees
  /// the replay asks for the same genomes in the same order.
  void preload_records(std::vector<nas::EvaluationRecord> records);

  /// How many evaluations were satisfied from preloaded records.
  std::size_t resumed_count() const { return resumed_; }

  /// Preloaded records whose stored genome did not match the re-requested
  /// one (stale commons from a different seed/config): retrained instead.
  std::size_t genome_mismatches() const { return genome_mismatches_; }

  /// Evaluations whose job exhausted its retries. The records exist (with
  /// failed=true) but carry no fitness and are excluded from the commons.
  std::size_t failed_count() const { return failed_; }

  /// Attach the search-time fitness memo-cache (null detaches). In kCold/
  /// kOn modes per-model training seeds become genome-keyed
  /// (nas::memo_model_seed); in kOn a genome that already has a cached
  /// evaluation resolves to an O(1) replay instead of a training job. The
  /// memo must outlive the evaluator. Every non-failed record of a
  /// generation is inserted during the accounting pass, so cache hits are
  /// cross-generation (same-generation duplicates retrain — identically,
  /// thanks to genome-keyed seeds).
  void set_memo(nas::FitnessMemo* memo) { memo_ = memo; }

  /// Evaluations satisfied by memo-cache replay / by ancestor warm starts.
  std::size_t memo_hits() const { return memo_hits_; }
  std::size_t inherited_count() const { return inherited_; }

  /// Attach a latency probe (null detaches; must outlive the evaluator).
  /// During the accounting pass every non-failed record whose stored
  /// latency_host is not *this* machine's fingerprint — fresh trainings,
  /// and memo/resume replays stamped on another host — is probed at the
  /// serving micro-batch geometry and roofline-priced, so the hardware
  /// objectives the search minimizes are always measurements from the
  /// machine running the search.
  void set_latency_probe(const latency::LatencyProbe* probe) {
    probe_ = probe;
  }

  /// Records latency-probed so far (re-probes; fingerprint matches reuse
  /// the stored timing and are not counted).
  std::size_t probed_count() const { return probed_; }

  /// Objective mode of the owning search. Stamped into remote job payloads
  /// (cluster::JobRequest.objective, serialized only when not kFlops) so
  /// workers can cross-check the mode beyond the handshake config CRC.
  void set_objective(nas::ObjectiveMode mode) { objective_ = mode; }

  /// Same-generation duplicate coalescing: when enabled (and the attached
  /// memo keys training seeds by genome, which is what makes duplicate
  /// trainings bit-identical), duplicate genomes within one generation
  /// train once — the first occurrence is the leader, the rest wait for
  /// its record and copy it under their own model ids. The journal bytes
  /// each follower flushes are exactly what its own training would have
  /// produced; only the accounting (nas.coalesced, the coalesced
  /// engine-overhead bucket) tells the difference. Off by default so
  /// existing counter expectations are undisturbed.
  void set_coalesce(bool on) { coalesce_ = on; }
  std::size_t coalesced_count() const { return coalesced_; }

  /// Attach a metrics registry: evaluation and engine-overhead counters are
  /// accumulated there (in record order, so they bit-match the RunSummary
  /// ad-hoc totals). Pass nullptr to detach; must outlive the evaluator.
  void set_metrics(util::metrics::Registry* registry) { metrics_ = registry; }

  /// Fault injection: simulate process death after `n` freshly-trained
  /// records have been flushed to the commons (0 disables). The tracker is
  /// sealed at that point and evaluate_generation throws
  /// WorkflowInterrupted once the in-flight generation drains.
  void set_crash_after(std::size_t n) { crash_after_ = n; }
  bool crashed() const { return crashed_.load(); }

  std::vector<nas::EvaluationRecord> evaluate_generation(
      std::span<const nas::Genome> genomes, int generation) override;

  /// Ancestry-aware entry point the search calls: parentage feeds weight
  /// inheritance (when the loop's TrainerConfig enables it) by naming the
  /// ancestor whose snapshots warm-start each child.
  std::vector<nas::EvaluationRecord> evaluate_generation(
      std::span<const nas::Genome> genomes,
      std::span<const nas::Parentage> parents, int generation) override;

  /// Generation schedules observed so far (for the scalability analyses).
  const std::vector<sched::GenerationSchedule>& schedules() const {
    return schedules_;
  }

 private:
  /// Incremental checkpoint: persist a finished record immediately (not at
  /// the generation barrier) so a crash loses at most the in-flight jobs.
  void flush_record(const nas::EvaluationRecord& record);

  const TrainingLoop* loop_;
  sched::ResourceManager* cluster_;
  nas::SearchSpaceConfig space_;
  std::uint64_t seed_;
  lineage::LineageTracker* lineage_;
  int next_model_id_ = 0;
  std::vector<sched::GenerationSchedule> schedules_;
  std::map<int, nas::EvaluationRecord> resume_pool_;
  std::size_t resumed_ = 0;
  std::size_t genome_mismatches_ = 0;
  std::size_t failed_ = 0;
  nas::FitnessMemo* memo_ = nullptr;
  std::size_t memo_hits_ = 0;
  std::size_t inherited_ = 0;
  const latency::LatencyProbe* probe_ = nullptr;
  std::size_t probed_ = 0;
  nas::ObjectiveMode objective_ = nas::ObjectiveMode::kFlops;
  bool coalesce_ = false;
  std::size_t coalesced_ = 0;
  util::metrics::Registry* metrics_ = nullptr;
  std::size_t crash_after_ = 0;
  std::atomic<std::size_t> flushed_{0};
  std::atomic<bool> crashed_{false};
};

}  // namespace a4nn::orchestrator
