#include "orchestrator/training_loop.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "tensor/scratch.hpp"
#include "util/fsutil.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace a4nn::orchestrator {

const char* lr_schedule_name(LrSchedule schedule) {
  switch (schedule) {
    case LrSchedule::kConstant: return "constant";
    case LrSchedule::kCosine: return "cosine";
    case LrSchedule::kStep: return "step";
  }
  return "?";
}

double TrainerConfig::lr_at(std::size_t epoch) const {
  if (epoch == 0) throw std::invalid_argument("lr_at: epochs are 1-based");
  switch (lr_schedule) {
    case LrSchedule::kConstant: return learning_rate;
    case LrSchedule::kCosine: {
      const double progress =
          static_cast<double>(epoch - 1) /
          static_cast<double>(std::max<std::size_t>(1, max_epochs - 1));
      return min_learning_rate +
             0.5 * (learning_rate - min_learning_rate) *
                 (1.0 + std::cos(M_PI * progress));
    }
    case LrSchedule::kStep: {
      double lr = learning_rate;
      for (std::size_t e = step_every; e < epoch; e += step_every) lr *= 0.5;
      return std::max(lr, min_learning_rate);
    }
  }
  return learning_rate;
}

util::Json TrainerConfig::to_json() const {
  util::Json j = util::Json::object();
  j["max_epochs"] = max_epochs;
  j["batch_size"] = batch_size;
  j["learning_rate"] = learning_rate;
  j["momentum"] = momentum;
  j["weight_decay"] = weight_decay;
  j["lr_schedule"] = lr_schedule_name(lr_schedule);
  j["use_prediction_engine"] = use_prediction_engine;
  j["engine"] = engine.to_json();
  j["resume_partial"] = resume_partial;
  j["inherit_weights"] = inherit_weights;
  j["inherit_epoch_fraction"] = inherit_epoch_fraction;
  return j;
}

namespace {

// Rng words are full 64-bit values; JSON numbers (doubles) cannot hold
// them exactly, so the state round-trips through hex strings.
util::Json rng_state_to_json(const util::RngState& st) {
  util::Json j = util::Json::object();
  util::Json words = util::Json::array();
  for (std::uint64_t w : st.s) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, w);
    words.push_back(util::Json(std::string(buf)));
  }
  j["s"] = std::move(words);
  j["has_cached_normal"] = st.has_cached_normal;
  j["cached_normal"] = st.cached_normal;
  return j;
}

util::RngState rng_state_from_json(const util::Json& j) {
  util::RngState st;
  const auto& words = j.at("s").as_array();
  if (words.size() != st.s.size())
    throw util::JsonError("rng state: expected 4 state words");
  for (std::size_t i = 0; i < st.s.size(); ++i)
    st.s[i] = std::strtoull(words[i].as_string().c_str(), nullptr, 16);
  st.has_cached_normal = j.at("has_cached_normal").as_bool();
  st.cached_normal = j.at("cached_normal").as_number();
  return st;
}

util::Json doubles_to_json(const std::vector<double>& v) {
  util::JsonArray arr;
  arr.reserve(v.size());
  for (double d : v) arr.emplace_back(d);
  return util::Json(std::move(arr));
}

}  // namespace

TrainingLoop::TrainingLoop(const nn::Dataset& train,
                           const nn::Dataset& validation, TrainerConfig config,
                           lineage::LineageTracker* lineage)
    : train_(&train),
      validation_(&validation),
      config_(std::move(config)),
      lineage_(lineage) {
  if (train.size() == 0 || validation.size() == 0)
    throw std::invalid_argument("TrainingLoop: empty dataset");
  if (config_.max_epochs == 0)
    throw std::invalid_argument("TrainingLoop: max_epochs must be >= 1");
}

nas::EvaluationRecord TrainingLoop::train_genome(
    const nas::Genome& genome, const nas::SearchSpaceConfig& space,
    int model_id, std::uint64_t seed) const {
  util::Rng init_rng(seed);
  nn::Model model = nas::decode_genome(genome, space, init_rng);
  nas::EvaluationRecord record = train_model(model, model_id, seed ^ 0x5bd1e995);
  record.genome = genome;
  return record;
}

namespace {

/// Deterministic shape-compatible transfer map: for each aligned layer pair
/// of matching kind, copy every parameter tensor whose slot name and shape
/// agree. Slots with no compatible source keep the child's seeded-RNG
/// initialization. Returns (tensors copied, tensors left fresh) over all
/// of the child's parameter slots.
std::pair<std::size_t, std::size_t> transfer_weights(nn::Model& parent,
                                                     nn::Model& child) {
  std::size_t copied = 0;
  std::size_t total = 0;
  const std::size_t layers =
      std::min(parent.trunk().layer_count(), child.trunk().layer_count());
  for (std::size_t i = 0; i < layers; ++i) {
    nn::Layer& src = parent.trunk().layer(i);
    nn::Layer& dst = child.trunk().layer(i);
    if (src.kind() != dst.kind()) continue;
    auto src_slots = src.params();
    for (auto& d : dst.params()) {
      for (auto& s : src_slots) {
        if (s.name == d.name && s.value->shape() == d.value->shape()) {
          *d.value = *s.value;
          ++copied;
          break;
        }
      }
    }
  }
  total = child.trunk().params().size();
  return {copied, total - copied};
}

}  // namespace

nas::EvaluationRecord TrainingLoop::train_genome_inherited(
    const nas::Genome& genome, const nas::SearchSpaceConfig& space,
    int model_id, std::uint64_t seed, int ancestor_model_id) const {
  namespace fs = std::filesystem;
  if (!lineage_ || ancestor_model_id < 0)
    return train_genome(genome, space, model_id, seed);

  const fs::path dir = lineage_->root() / "models" /
                       lineage::model_dir_name(ancestor_model_id);
  // Newest snapshot first; unusable checkpoints fall back to older ones,
  // mirroring try_resume's discipline.
  std::vector<std::size_t> epochs;
  if (fs::exists(dir)) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      const auto epoch = lineage::parse_indexed_name(
          entry.path().filename().string(), "epoch_", ".ckpt.json");
      if (epoch) epochs.push_back(*epoch);
    }
  }
  std::sort(epochs.rbegin(), epochs.rend());

  for (std::size_t e : epochs) {
    try {
      // Re-decode the child fresh for every attempt: a fine-tune that
      // throws after transfer_weights leaves the model mutated, and an
      // older checkpoint may not cover every slot the newer one touched —
      // the fallback must stay a pure function of (genome, seed, commons),
      // never of the failed attempt's leftovers.
      util::Rng init_rng(seed);
      nn::Model model = nas::decode_genome(genome, space, init_rng);
      nn::Model parent = nn::Model::from_checkpoint(util::Json::parse(
          lineage::read_artifact(dir / lineage::snapshot_file_name(e))));
      const auto [copied, fresh] = transfer_weights(parent, model);
      if (copied == 0)
        break;  // no compatible tensors at all: cold start is honest

      TrainerConfig fine = config_;
      fine.max_epochs = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::ceil(config_.inherit_epoch_fraction *
                           static_cast<double>(config_.max_epochs))));
      TrainingLoop fine_loop(*train_, *validation_, fine, lineage_);
      fine_loop.set_metrics(metrics_);
      nas::EvaluationRecord record =
          fine_loop.train_model(model, model_id, seed ^ 0x5bd1e995);
      resumed_epochs_.fetch_add(fine_loop.resumed_epochs());
      record.genome = genome;
      record.inherited_from_model = ancestor_model_id;
      record.inherited_from_epoch = e;
      record.inherited_params_copied = copied;
      record.inherited_params_fresh = fresh;
      if (metrics_) metrics_->counter("train.inherited_starts").add();
      util::log_info("inherit: model ", model_id, " warm-started from model ",
                     ancestor_model_id, " epoch ", e, " (", copied,
                     " tensors copied, ", fresh, " fresh)");
      return record;
    } catch (const std::exception& ex) {
      util::log_warn("inherit: model ", model_id, " cannot use ancestor ",
                     ancestor_model_id, " epoch ", e, " (", ex.what(),
                     "); trying older");
    }
  }
  return train_genome(genome, space, model_id, seed);
}

nas::EvaluationRecord TrainingLoop::train_model(nn::Model& model, int model_id,
                                                std::uint64_t seed) const {
  util::Rng rng(seed);
  nn::Sgd opt(config_.learning_rate, config_.momentum, config_.weight_decay);
  // Engine construction is part of the loop (Algorithm 1 line 1); its cost
  // is measured into the overhead the paper reports in §4.3.1.
  util::Timer wall;
  util::Timer engine_timer;
  double engine_overhead = 0.0;
  std::optional<penguin::PredictionEngine> engine;
  if (config_.use_prediction_engine) {
    engine_timer.reset();
    engine.emplace(config_.engine);
    engine_overhead += engine_timer.seconds();
    if (metrics_) engine->set_metrics(metrics_);
  }

  util::trace::Scope model_span("train.model", "train");
  model_span.arg("model_id", static_cast<double>(model_id));

  nas::EvaluationRecord record;
  record.model_id = model_id;
  record.flops = model.flops_per_image();
  record.parameters = model.parameter_count();
  record.max_epochs = config_.max_epochs;
  const double epoch_virtual = config_.cost.epoch_seconds(record.flops);

  bool converged = false;
  std::size_t start_epoch = 1;
  if (config_.resume_partial && lineage_) {
    start_epoch = try_resume(model, opt, rng, record, converged);
    engine_overhead += record.engine_overhead_seconds;
  }

  // The loop condition (not an inner break) ends training on convergence
  // so a restored already-converged state trains zero further epochs.
  for (std::size_t epoch = start_epoch;
       !converged && epoch <= config_.max_epochs; ++epoch) {
    util::trace::Scope epoch_span("train.epoch", "train");
    epoch_span.arg("model_id", static_cast<double>(model_id));
    epoch_span.arg("epoch", static_cast<double>(epoch));
    opt.set_learning_rate(config_.lr_at(epoch));
    nn::EpochMetrics train_metrics;
    {
      util::trace::Scope span("epoch.train", "train");
      train_metrics = model.train_epoch(*train_, config_.batch_size, opt, rng);
    }
    nn::EpochMetrics val_metrics;
    {
      util::trace::Scope span("epoch.eval", "train");
      val_metrics = model.evaluate(*validation_);
    }
    if (metrics_) metrics_->counter("train.epochs").add();

    record.train_accuracy_history.push_back(train_metrics.accuracy);
    record.train_loss_history.push_back(train_metrics.loss);
    record.fitness_history.push_back(val_metrics.accuracy);  // H <- h_e
    record.epoch_virtual_seconds.push_back(epoch_virtual);
    record.epochs_trained = epoch;

    if (lineage_ && lineage_->wants_snapshot(epoch))
      lineage_->record_model_epoch(model_id, epoch, model);

    if (engine) {
      util::trace::Scope engine_span("engine.step", "penguin");
      engine_span.arg("model_id", static_cast<double>(model_id));
      engine_span.arg("epoch", static_cast<double>(epoch));
      engine_timer.reset();
      // Predictor step: p_e from the fitness history.
      const std::optional<double> p_e =
          engine->predict(record.fitness_history);
      if (p_e) record.prediction_history.push_back(*p_e);  // P <- p_e
      // Analyzer step: has P converged to a stable value?
      converged = engine->converged(record.prediction_history);
      engine_overhead += engine_timer.seconds();
    }

    // The training state is captured after the engine step so a resume
    // replays the epoch's prediction and convergence outcome exactly.
    if (lineage_ && lineage_->wants_snapshot(epoch)) {
      util::trace::Scope ckpt_span("checkpoint.commit", "lineage");
      ckpt_span.arg("model_id", static_cast<double>(model_id));
      ckpt_span.arg("epoch", static_cast<double>(epoch));
      util::Json state = util::Json::object();
      state["model_id"] = model_id;
      state["epoch"] = epoch;
      state["converged"] = converged;
      state["rng"] = rng_state_to_json(rng.state());
      auto slots = model.trunk().params();
      state["optimizer"] = opt.state_json(slots);
      util::Json rec = util::Json::object();
      rec["fitness_history"] = doubles_to_json(record.fitness_history);
      rec["train_accuracy_history"] =
          doubles_to_json(record.train_accuracy_history);
      rec["train_loss_history"] = doubles_to_json(record.train_loss_history);
      rec["prediction_history"] = doubles_to_json(record.prediction_history);
      rec["epoch_virtual_seconds"] =
          doubles_to_json(record.epoch_virtual_seconds);
      rec["engine_overhead_seconds"] = engine_overhead;
      state["record"] = std::move(rec);
      lineage_->record_training_state(model_id, epoch, state);
    }
  }

  record.early_terminated =
      converged && record.epochs_trained < config_.max_epochs;
  // Algorithm 1 lines 17-21: stopped early -> P[-1], else the last measured
  // fitness h_e. Convergence that only arrives on the final epoch saved no
  // training, so the measured value — not the extrapolation — is reported
  // (simulate_early_termination applies the identical rule).
  record.measured_fitness = record.fitness_history.back();
  record.fitness = record.early_terminated ? record.prediction_history.back()
                                           : record.measured_fitness;
  record.engine_overhead_seconds = engine_overhead;
  record.wall_seconds = wall.seconds();
  record.virtual_seconds =
      epoch_virtual * static_cast<double>(record.epochs_trained);
  if (metrics_) {
    metrics_->counter("train.models").add();
    if (record.early_terminated)
      metrics_->counter("train.early_terminated").add();
  }
  model_span.arg("epochs_trained", static_cast<double>(record.epochs_trained));
  model_span.arg("early_terminated", record.early_terminated ? 1.0 : 0.0);

  // Job boundary: drop this worker's kernel scratch so its footprint is
  // bounded by the current model, not the largest one it ever trained.
  tensor::ScratchArena::tls().release();

  return record;
}

std::size_t TrainingLoop::try_resume(nn::Model& model, nn::Sgd& opt,
                                     util::Rng& rng,
                                     nas::EvaluationRecord& record,
                                     bool& converged) const {
  namespace fs = std::filesystem;
  const fs::path dir =
      lineage_->root() / "models" / lineage::model_dir_name(record.model_id);
  if (!fs::exists(dir)) return 1;

  // Newest state first; a corrupt or mismatched pair falls back to older.
  // Strict name parsing: a stray "epoch_backup.state.json" is skipped, not
  // misread as epoch 0.
  std::vector<std::size_t> epochs;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const auto epoch = lineage::parse_indexed_name(
        entry.path().filename().string(), "epoch_", ".state.json");
    if (epoch) epochs.push_back(*epoch);
  }
  std::sort(epochs.rbegin(), epochs.rend());

  for (std::size_t e : epochs) {
    try {
      // read_artifact verifies the integrity frame: a bit-flipped or torn
      // state/checkpoint throws here and falls back to the next-older one.
      const util::Json state = util::Json::parse(lineage::read_artifact(
          dir / lineage::training_state_file_name(e)));
      if (static_cast<int>(state.at("model_id").as_int()) != record.model_id ||
          static_cast<std::size_t>(state.at("epoch").as_int()) != e)
        throw util::JsonError("training state labels the wrong model/epoch");

      const util::Json ckpt = util::Json::parse(lineage::read_artifact(
          dir / lineage::snapshot_file_name(e)));
      // A stale checkpoint from a different architecture must never be
      // loaded into this model; the decoded genome's spec is the truth.
      if (!(ckpt.at("spec") == model.trunk().spec()))
        throw util::JsonError("checkpoint spec differs from decoded genome");

      // Parse and validate everything before mutating model/opt/rng/record:
      // a half-applied restore must not leak into the fallback attempt.
      const util::Json& rec = state.at("record");
      auto fitness = rec.at("fitness_history").as_double_vector();
      auto train_acc = rec.at("train_accuracy_history").as_double_vector();
      auto train_loss = rec.at("train_loss_history").as_double_vector();
      auto predictions = rec.at("prediction_history").as_double_vector();
      auto epoch_virtual = rec.at("epoch_virtual_seconds").as_double_vector();
      const double overhead = rec.at("engine_overhead_seconds").as_number();
      const util::RngState rng_state = rng_state_from_json(state.at("rng"));
      const bool was_converged = state.at("converged").as_bool();
      if (fitness.size() != e)
        throw util::JsonError("training state history shorter than its epoch");

      model.trunk().load_weights(ckpt.at("weights"));
      auto slots = model.trunk().params();
      opt.load_state(slots, state.at("optimizer"));
      rng.set_state(rng_state);

      record.fitness_history = std::move(fitness);
      record.train_accuracy_history = std::move(train_acc);
      record.train_loss_history = std::move(train_loss);
      record.prediction_history = std::move(predictions);
      record.epoch_virtual_seconds = std::move(epoch_virtual);
      record.engine_overhead_seconds = overhead;
      record.epochs_trained = e;
      record.resumed_from_epoch = e;
      converged = was_converged;
      resumed_epochs_.fetch_add(e);
      util::log_info("resume: model ", record.model_id,
                     " continues from epoch ", e + 1, " (", e,
                     " epochs restored)");
      return e + 1;
    } catch (const std::exception& ex) {
      util::log_warn("resume: model ", record.model_id, " epoch ", e,
                     " state unusable (", ex.what(), "); trying older");
    }
  }
  return 1;
}

}  // namespace a4nn::orchestrator
