#include "orchestrator/training_loop.hpp"

#include <cmath>
#include <stdexcept>

#include "util/timer.hpp"

namespace a4nn::orchestrator {

const char* lr_schedule_name(LrSchedule schedule) {
  switch (schedule) {
    case LrSchedule::kConstant: return "constant";
    case LrSchedule::kCosine: return "cosine";
    case LrSchedule::kStep: return "step";
  }
  return "?";
}

double TrainerConfig::lr_at(std::size_t epoch) const {
  if (epoch == 0) throw std::invalid_argument("lr_at: epochs are 1-based");
  switch (lr_schedule) {
    case LrSchedule::kConstant: return learning_rate;
    case LrSchedule::kCosine: {
      const double progress =
          static_cast<double>(epoch - 1) /
          static_cast<double>(std::max<std::size_t>(1, max_epochs - 1));
      return min_learning_rate +
             0.5 * (learning_rate - min_learning_rate) *
                 (1.0 + std::cos(M_PI * progress));
    }
    case LrSchedule::kStep: {
      double lr = learning_rate;
      for (std::size_t e = step_every; e < epoch; e += step_every) lr *= 0.5;
      return std::max(lr, min_learning_rate);
    }
  }
  return learning_rate;
}

util::Json TrainerConfig::to_json() const {
  util::Json j = util::Json::object();
  j["max_epochs"] = max_epochs;
  j["batch_size"] = batch_size;
  j["learning_rate"] = learning_rate;
  j["momentum"] = momentum;
  j["weight_decay"] = weight_decay;
  j["lr_schedule"] = lr_schedule_name(lr_schedule);
  j["use_prediction_engine"] = use_prediction_engine;
  j["engine"] = engine.to_json();
  return j;
}

TrainingLoop::TrainingLoop(const nn::Dataset& train,
                           const nn::Dataset& validation, TrainerConfig config,
                           lineage::LineageTracker* lineage)
    : train_(&train),
      validation_(&validation),
      config_(std::move(config)),
      lineage_(lineage) {
  if (train.size() == 0 || validation.size() == 0)
    throw std::invalid_argument("TrainingLoop: empty dataset");
  if (config_.max_epochs == 0)
    throw std::invalid_argument("TrainingLoop: max_epochs must be >= 1");
}

nas::EvaluationRecord TrainingLoop::train_genome(
    const nas::Genome& genome, const nas::SearchSpaceConfig& space,
    int model_id, std::uint64_t seed) const {
  util::Rng init_rng(seed);
  nn::Model model = nas::decode_genome(genome, space, init_rng);
  nas::EvaluationRecord record = train_model(model, model_id, seed ^ 0x5bd1e995);
  record.genome = genome;
  return record;
}

nas::EvaluationRecord TrainingLoop::train_model(nn::Model& model, int model_id,
                                                std::uint64_t seed) const {
  util::Rng rng(seed);
  nn::Sgd opt(config_.learning_rate, config_.momentum, config_.weight_decay);
  // Engine construction is part of the loop (Algorithm 1 line 1); its cost
  // is measured into the overhead the paper reports in §4.3.1.
  util::Timer wall;
  util::Timer engine_timer;
  double engine_overhead = 0.0;
  std::optional<penguin::PredictionEngine> engine;
  if (config_.use_prediction_engine) {
    engine_timer.reset();
    engine.emplace(config_.engine);
    engine_overhead += engine_timer.seconds();
  }

  nas::EvaluationRecord record;
  record.model_id = model_id;
  record.flops = model.flops_per_image();
  record.parameters = model.parameter_count();
  record.max_epochs = config_.max_epochs;
  const double epoch_virtual = config_.cost.epoch_seconds(record.flops);

  bool converged = false;
  for (std::size_t epoch = 1; epoch <= config_.max_epochs; ++epoch) {
    opt.set_learning_rate(config_.lr_at(epoch));
    const nn::EpochMetrics train_metrics =
        model.train_epoch(*train_, config_.batch_size, opt, rng);
    const nn::EpochMetrics val_metrics = model.evaluate(*validation_);

    record.train_accuracy_history.push_back(train_metrics.accuracy);
    record.train_loss_history.push_back(train_metrics.loss);
    record.fitness_history.push_back(val_metrics.accuracy);  // H <- h_e
    record.epoch_virtual_seconds.push_back(epoch_virtual);
    record.epochs_trained = epoch;

    if (lineage_ && lineage_->wants_snapshot(epoch))
      lineage_->record_model_epoch(model_id, epoch, model);

    if (engine) {
      engine_timer.reset();
      // Predictor step: p_e from the fitness history.
      const std::optional<double> p_e =
          engine->predict(record.fitness_history);
      if (p_e) record.prediction_history.push_back(*p_e);  // P <- p_e
      // Analyzer step: has P converged to a stable value?
      converged = engine->converged(record.prediction_history);
      engine_overhead += engine_timer.seconds();
      if (converged) break;
    }
  }

  record.early_terminated =
      converged && record.epochs_trained < config_.max_epochs;
  // Algorithm 1 lines 17-21: converged -> P[-1], else the last measured
  // fitness h_e.
  record.measured_fitness = record.fitness_history.back();
  record.fitness = converged ? record.prediction_history.back()
                             : record.measured_fitness;
  record.engine_overhead_seconds = engine_overhead;
  record.wall_seconds = wall.seconds();
  record.virtual_seconds =
      epoch_virtual * static_cast<double>(record.epochs_trained);

  return record;
}

}  // namespace a4nn::orchestrator
