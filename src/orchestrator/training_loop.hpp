// Algorithm 1 of the paper: the training loop with the prediction engine
// plugged in. After every epoch the orchestrator validates the model,
// appends the fitness to the history H, asks the engine for a prediction
// (appended to P), and asks the analyzer whether P has converged; on
// convergence training stops early and P.back() becomes the network's
// fitness, otherwise the final measured fitness is used.
#pragma once

#include <atomic>
#include <optional>

#include "lineage/tracker.hpp"
#include "nas/evaluator.hpp"
#include "nas/search_space.hpp"
#include "penguin/engine.hpp"
#include "sched/cost_model.hpp"

namespace a4nn::orchestrator {

/// Learning-rate schedule over the epoch budget. NSGA-Net trains its
/// candidates with cosine annealing; constant is the simplest baseline.
enum class LrSchedule { kConstant, kCosine, kStep };
const char* lr_schedule_name(LrSchedule schedule);

struct TrainerConfig {
  std::size_t max_epochs = 25;   // Table 2: number of epochs to train
  std::size_t batch_size = 32;
  double learning_rate = 0.05;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  LrSchedule lr_schedule = LrSchedule::kConstant;
  /// Cosine floor / step multiplier target.
  double min_learning_rate = 5e-3;
  /// kStep: halve the rate every this many epochs.
  std::size_t step_every = 10;

  /// Plug in the prediction engine (A4NN) or train the fixed epoch budget
  /// (standalone NSGA-Net).
  bool use_prediction_engine = true;
  penguin::EngineConfig engine = penguin::default_engine_config();

  /// Resume a partially-trained model from its last epoch checkpoint in
  /// the commons instead of retraining from epoch 0. Requires a lineage
  /// tracker whose snapshots include training state; the restored stream
  /// (weights + optimizer momentum + RNG) is bit-identical, so a resumed
  /// training finishes with exactly the same record as an uninterrupted
  /// one.
  bool resume_partial = false;

  /// Weight inheritance: seed a child's tensors from its closest-ancestor
  /// epoch checkpoint (shape-compatible slots copied, the rest keep their
  /// seeded-RNG initialization) and fine-tune for only
  /// ceil(inherit_epoch_fraction * max_epochs) epochs. Requires lineage
  /// snapshots; children whose ancestors left no usable checkpoint train
  /// the full budget from scratch.
  bool inherit_weights = false;
  double inherit_epoch_fraction = 0.5;

  /// Virtual-time accounting for the simulated devices.
  sched::DeviceCostModel cost;

  util::Json to_json() const;

  /// Learning rate for 1-based `epoch` under the configured schedule.
  double lr_at(std::size_t epoch) const;
};

class TrainingLoop {
 public:
  /// Datasets must outlive the loop. `lineage` may be null (no tracking).
  TrainingLoop(const nn::Dataset& train, const nn::Dataset& validation,
               TrainerConfig config, lineage::LineageTracker* lineage = nullptr);
  virtual ~TrainingLoop() = default;

  /// Train one genome (Algorithm 1). `model_id` labels lineage artifacts;
  /// `seed` controls weight init and batch order. Virtual so fault tests
  /// can substitute a loop whose jobs throw on demand.
  virtual nas::EvaluationRecord train_genome(const nas::Genome& genome,
                                             const nas::SearchSpaceConfig& space,
                                             int model_id,
                                             std::uint64_t seed) const;

  /// Warm-start variant of train_genome: decode the child with `seed`,
  /// overwrite every shape-compatible parameter tensor from the newest
  /// usable epoch checkpoint of `ancestor_model_id` in the commons, then
  /// fine-tune under a budget of ceil(inherit_epoch_fraction * max_epochs)
  /// epochs. Records inheritance provenance (ancestor, epoch, tensors
  /// copied vs. kept fresh). Falls back to a full cold train_genome when
  /// the ancestor left no usable snapshot, so the call never fails on
  /// missing lineage. Fully deterministic in (genome, seed, commons).
  virtual nas::EvaluationRecord train_genome_inherited(
      const nas::Genome& genome, const nas::SearchSpaceConfig& space,
      int model_id, std::uint64_t seed, int ancestor_model_id) const;

  /// Train an existing model the same way (used by tests and the
  /// prediction-trace bench, which needs a fixed architecture).
  nas::EvaluationRecord train_model(nn::Model& model, int model_id,
                                    std::uint64_t seed) const;

  const TrainerConfig& config() const { return config_; }

  /// Total epochs skipped so far by resuming from checkpoints.
  std::size_t resumed_epochs() const { return resumed_epochs_.load(); }

  /// Attach a metrics registry: trained epochs/models and engine activity
  /// are counted there, and every engine this loop constructs inherits it.
  /// Pass nullptr to detach; the registry must outlive the loop.
  void set_metrics(util::metrics::Registry* registry) { metrics_ = registry; }

 private:
  /// Restore the newest usable (checkpoint, training state) pair for this
  /// model from the commons. Returns the 1-based epoch to continue from
  /// (1 when nothing usable exists). Corrupt or mismatched files are
  /// skipped with a warning, falling back to older epochs.
  std::size_t try_resume(nn::Model& model, nn::Sgd& opt, util::Rng& rng,
                         nas::EvaluationRecord& record, bool& converged) const;

  const nn::Dataset* train_;
  const nn::Dataset* validation_;
  TrainerConfig config_;
  lineage::LineageTracker* lineage_;
  util::metrics::Registry* metrics_ = nullptr;
  mutable std::atomic<std::size_t> resumed_epochs_{0};
};

}  // namespace a4nn::orchestrator
