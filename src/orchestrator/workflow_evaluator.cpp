#include "orchestrator/workflow_evaluator.hpp"

namespace a4nn::orchestrator {

WorkflowEvaluator::WorkflowEvaluator(const TrainingLoop& loop,
                                     sched::ResourceManager& cluster,
                                     nas::SearchSpaceConfig space,
                                     std::uint64_t seed,
                                     lineage::LineageTracker* lineage)
    : loop_(&loop),
      cluster_(&cluster),
      space_(std::move(space)),
      seed_(seed),
      lineage_(lineage) {}

void WorkflowEvaluator::preload_records(
    std::vector<nas::EvaluationRecord> records) {
  for (auto& r : records) resume_pool_[r.model_id] = std::move(r);
}

std::vector<nas::EvaluationRecord> WorkflowEvaluator::evaluate_generation(
    std::span<const nas::Genome> genomes, int generation) {
  std::vector<nas::EvaluationRecord> records(genomes.size());

  // One job per genome. Each job owns a slot in `records`; jobs never touch
  // shared state, so they can run on any pool worker.
  std::vector<sched::Job> jobs;
  jobs.reserve(genomes.size());
  const int base_id = next_model_id_;
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    const nas::Genome genome = genomes[i];
    const int model_id = base_id + static_cast<int>(i);
    nas::EvaluationRecord* slot = &records[i];

    // Resume hit: identical model id and genome from a previous run.
    const auto cached = resume_pool_.find(model_id);
    if (cached != resume_pool_.end() &&
        cached->second.genome.key() == genome.key()) {
      *slot = cached->second;
      ++resumed_;
      jobs.push_back(sched::Job{[slot] { return slot->virtual_seconds; }});
      continue;
    }

    // Per-model deterministic seed independent of execution order.
    const std::uint64_t model_seed =
        seed_ ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(model_id + 1));
    jobs.push_back(sched::Job{[this, genome, model_id, model_seed, slot] {
      *slot = loop_->train_genome(genome, space_, model_id, model_seed);
      return slot->virtual_seconds;
    }});
  }
  next_model_id_ += static_cast<int>(genomes.size());

  const sched::GenerationSchedule schedule =
      cluster_->run_generation(std::move(jobs));
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].generation = generation;
    records[i].device_id = schedule.placements[i].device_id;
  }
  schedules_.push_back(schedule);

  if (lineage_) {
    for (const auto& record : records) lineage_->record_evaluation(record);
  }
  return records;
}

}  // namespace a4nn::orchestrator
