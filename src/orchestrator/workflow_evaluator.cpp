#include "orchestrator/workflow_evaluator.hpp"

#include <charconv>
#include <memory>

#include "util/log.hpp"
#include "util/shutdown.hpp"
#include "util/trace.hpp"

namespace a4nn::orchestrator {

namespace {

/// u64 as lowercase hex text: per-model seeds exceed 2^53, so they cannot
/// ride a JSON number (doubles) to a remote worker.
std::string seed_to_hex(std::uint64_t v) {
  char buf[17];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v, 16);
  (void)ec;
  return std::string(buf, ptr);
}

}  // namespace

WorkflowEvaluator::WorkflowEvaluator(const TrainingLoop& loop,
                                     sched::ResourceManager& cluster,
                                     nas::SearchSpaceConfig space,
                                     std::uint64_t seed,
                                     lineage::LineageTracker* lineage)
    : loop_(&loop),
      cluster_(&cluster),
      space_(std::move(space)),
      seed_(seed),
      lineage_(lineage) {}

void WorkflowEvaluator::preload_records(
    std::vector<nas::EvaluationRecord> records) {
  for (auto& r : records) resume_pool_[r.model_id] = std::move(r);
}

void WorkflowEvaluator::flush_record(const nas::EvaluationRecord& record) {
  if (!lineage_) return;
  lineage_->record_evaluation(record);
  const std::size_t count = flushed_.fetch_add(1) + 1;
  if (crash_after_ > 0 && count >= crash_after_ && !crashed_.exchange(true)) {
    // Simulated process death: everything already flushed stays on disk;
    // every later write silently disappears, like a killed process.
    lineage_->seal();
  }
}

std::vector<nas::EvaluationRecord> WorkflowEvaluator::evaluate_generation(
    std::span<const nas::Genome> genomes, int generation) {
  return evaluate_generation(genomes, {}, generation);
}

std::vector<nas::EvaluationRecord> WorkflowEvaluator::evaluate_generation(
    std::span<const nas::Genome> genomes,
    std::span<const nas::Parentage> parents, int generation) {
  if (util::shutdown_requested()) {
    // Graceful stop (SIGINT/SIGTERM): every completed record is already
    // flushed to the commons, so a --resume run picks up exactly here.
    throw WorkflowInterrupted("shutdown requested before generation " +
                              std::to_string(generation));
  }
  util::trace::Scope gen_span("generation", "nas");
  gen_span.arg("generation", static_cast<double>(generation));
  gen_span.arg("genomes", static_cast<double>(genomes.size()));
  std::vector<nas::EvaluationRecord> records(genomes.size());

  // One job per genome. Each job owns a slot in `records`; jobs never touch
  // shared state, so they can run on any pool worker.
  std::vector<sched::Job> jobs;
  jobs.reserve(genomes.size());
  const int base_id = next_model_id_;
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    const nas::Genome genome = genomes[i];
    const int model_id = base_id + static_cast<int>(i);
    nas::EvaluationRecord* slot = &records[i];
    // Identify the slot up front so a job that fails permanently still
    // leaves a record naming its genome.
    slot->model_id = model_id;
    slot->genome = genome;
    slot->generation = generation;

    // Resume hit: identical model id and genome from a previous run.
    const auto cached = resume_pool_.find(model_id);
    if (cached != resume_pool_.end()) {
      if (cached->second.failed) {
        // A failed record holds no training result worth replaying (and
        // should never have reached the commons anyway): retrain.
        util::log_warn("resume: model ", model_id,
                       " stored record is a failure marker; retraining");
      } else if (cached->second.genome.key() == genome.key()) {
        *slot = cached->second;
        slot->generation = generation;
        ++resumed_;
        jobs.push_back(sched::Job{[slot] { return slot->virtual_seconds; }});
        continue;
      } else {
        // Stale commons (different seed or search config): the stored trail
        // is for another architecture, so it cannot be reused.
        util::log_warn("resume: model ", model_id, " genome mismatch (stored key=",
                       cached->second.genome.key(),
                       ", requested key=", genome.key(), "); retraining");
        ++genome_mismatches_;
      }
    }

    // Weight inheritance: warm-start from the first-named parent (the
    // tournament's first pick), resolved through the memo's canonical map
    // so a parent that was itself a cache replay (and thus wrote no
    // snapshots) redirects to the model that actually trained the genome —
    // identical weights, so kCold and kOn inherit the same tensors.
    // Resolved BEFORE the memo lookup: a child that will warm-start must
    // never be served a replay, because its result depends on the ancestor
    // — a cached record (trained from scratch or from a different parent)
    // would diverge from what a kCold run trains here.
    int ancestor = -1;
    if (loop_->config().inherit_weights && i < parents.size()) {
      const int raw = parents[i].parent_a >= 0 ? parents[i].parent_a
                                               : parents[i].parent_b;
      if (raw >= 0) {
        ancestor = memo_ ? memo_->canonical_model_of(raw) : raw;
        if (ancestor < 0) ancestor = raw;
      }
    }

    // Memo hit: this genome already has a journaled evaluation from an
    // earlier generation (or a warmed shared commons). Replay it under the
    // new model id: the pseudo-job reports the stored virtual duration so
    // the FIFO schedule — and therefore every later device placement — is
    // bit-identical to the run that trained it, and flushes the copied
    // record so the commons carries the same trails a cache-cold run
    // writes. `replayed` stays transient (never serialized). Only
    // parentless jobs are eligible: the memo admits only from-scratch
    // records, and warm-starting children bypass it entirely (above).
    if (memo_ && ancestor < 0) {
      if (const nas::EvaluationRecord* hit = memo_->lookup(genome)) {
        *slot = *hit;
        slot->model_id = model_id;
        slot->generation = generation;
        slot->replayed = true;
        ++memo_hits_;
        jobs.push_back(sched::Job{[this, slot] {
          flush_record(*slot);
          return slot->virtual_seconds;
        }});
        continue;
      }
    }

    // Per-model deterministic seed independent of execution order. Under
    // the memo (kCold and kOn alike) the seed is keyed by the genome, not
    // the model id, so a duplicate genome trained from scratch produces
    // the byte-identical record its cached twin would replay.
    const bool genome_keyed = memo_ && memo_->mode() != nas::MemoMode::kOff;
    const std::uint64_t model_seed =
        genome_keyed
            ? nas::memo_model_seed(seed_, genome)
            : seed_ ^ (0x9E3779B97F4A7C15ULL *
                       static_cast<std::uint64_t>(model_id + 1));

    sched::Job job{
        [this, genome, model_id, model_seed, generation, ancestor, slot] {
          *slot = ancestor >= 0
                      ? loop_->train_genome_inherited(genome, space_, model_id,
                                                      model_seed, ancestor)
                      : loop_->train_genome(genome, space_, model_id,
                                            model_seed);
          slot->generation = generation;
          flush_record(*slot);
          return slot->virtual_seconds;
        }};

    // Remote offering: what a cluster worker needs to reproduce this job
    // bit-exactly (cluster::JobRequest schema), and how to install its
    // result. Training is deterministic given (genome, space, model_id,
    // seed), so a remote record is byte-identical to a local one — the
    // genome-keyed memo seed rides the same payload field, so workers need
    // no cache awareness. Inherited jobs stay local-only: workers have no
    // access to the master's ancestor snapshots.
    if (ancestor >= 0) {
      jobs.push_back(std::move(job));
      continue;
    }
    util::Json payload = util::Json::object();
    payload["job"] = 0.0;  // dispatch id, stamped by the master
    payload["model_id"] = model_id;
    payload["generation"] = generation;
    payload["seed"] = seed_to_hex(model_seed);
    payload["genome"] = genome.to_json();
    job.remote_payload =
        std::make_shared<const util::Json>(std::move(payload));
    job.apply_remote = [this, genome, model_id, generation,
                        slot](const util::Json& doc) {
      nas::EvaluationRecord record = nas::EvaluationRecord::from_json(doc);
      if (record.model_id != model_id)
        throw std::runtime_error("remote record names model " +
                                 std::to_string(record.model_id) +
                                 ", expected " + std::to_string(model_id));
      if (record.genome.key() != genome.key())
        throw std::runtime_error("remote record genome mismatch for model " +
                                 std::to_string(model_id));
      if (record.failed)
        throw std::runtime_error("remote record is a failure marker: " +
                                 record.error);
      *slot = std::move(record);
      slot->generation = generation;
      flush_record(*slot);
      return slot->virtual_seconds;
    };
    jobs.push_back(std::move(job));
  }
  next_model_id_ += static_cast<int>(genomes.size());

  const sched::GenerationSchedule schedule =
      cluster_->run_generation(std::move(jobs));
  // Single-threaded accounting pass, in record order: metric counters here
  // bit-match any ad-hoc sum over the history in the same order.
  namespace trace = util::trace;
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].generation = generation;
    records[i].device_id = schedule.placements[i].device_id;
    if (schedule.placements[i].failed) {
      // The job never produced a result: mark the record failed instead of
      // letting a default-constructed trail masquerade as a fitness-0.0,
      // 0-FLOPs evaluation in selection and the commons.
      records[i].failed = true;
      records[i].error = schedule.placements[i].error;
      ++failed_;
      util::log_error("model ", records[i].model_id,
                      " failed permanently after retries: ",
                      schedule.placements[i].error);
    }
    // Replayed records carry the canonical record's provenance, not a warm
    // start paid this run (and the memo admits only from-scratch records
    // anyway): count inheritance for fresh evaluations only, mirroring the
    // engine-overhead split, so RunSummary.inherited_starts stays equal to
    // train.inherited_starts.
    const bool fresh_inherited =
        records[i].inherited_from_model >= 0 && !records[i].replayed;
    if (fresh_inherited) ++inherited_;
    if (metrics_) {
      metrics_->counter("nas.evaluations").add();
      if (records[i].failed) metrics_->counter("nas.failed_evaluations").add();
      if (records[i].replayed) {
        // Honest engine accounting: a replayed record's journaled fit cost
        // (LM iterations, convergence checks) was paid once, by the
        // canonical evaluation. Re-counting it as fresh overhead would
        // inflate RunSummary's engine totals on every cache hit, so
        // replays land in their own counter.
        metrics_->counter("nas.memo_hits").add();
        metrics_->counter("penguin.engine_overhead_replayed_seconds")
            .add(records[i].engine_overhead_seconds);
      } else {
        metrics_->counter("penguin.engine_overhead_seconds")
            .add(records[i].engine_overhead_seconds);
      }
      if (fresh_inherited)
        metrics_->counter("nas.inherited_evaluations").add();
    }
    // Cache admission happens here, in the single-threaded accounting
    // pass, so insertion order is deterministic and failures (which the
    // memo rejects anyway) have already been marked by the schedule.
    if (memo_ && !records[i].failed) memo_->insert(records[i]);
    if (trace::enabled()) {
      trace::emit_instant(
          "record.accounting", "nas", trace::now_us(), trace::kHostPid,
          trace::current_tid(),
          {{"model_id", static_cast<double>(records[i].model_id)},
           {"failed", records[i].failed ? 1.0 : 0.0},
           {"engine_overhead_seconds", records[i].engine_overhead_seconds},
           {"retries", static_cast<double>(schedule.placements[i].retries)},
           {"wasted_seconds", schedule.placements[i].wasted_seconds}});
    }
  }
  schedules_.push_back(schedule);

  if (lineage_) {
    // Re-record with the device placement stamped in (no-ops when sealed).
    // Failed records never reach the commons: a journaled failure would be
    // replayed on resume and fed to analytics as a real evaluation.
    for (const auto& record : records) {
      if (!record.failed) lineage_->record_evaluation(record);
    }
  }

  if (crashed_.load())
    throw WorkflowInterrupted(
        "workflow interrupted after flushing " +
        std::to_string(flushed_.load()) + " evaluation records");
  return records;
}

}  // namespace a4nn::orchestrator
