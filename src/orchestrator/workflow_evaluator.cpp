#include "orchestrator/workflow_evaluator.hpp"

#include <charconv>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "nas/search_space.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/shutdown.hpp"
#include "util/trace.hpp"

namespace a4nn::orchestrator {

namespace {

/// u64 as lowercase hex text: per-model seeds exceed 2^53, so they cannot
/// ride a JSON number (doubles) to a remote worker.
std::string seed_to_hex(std::uint64_t v) {
  char buf[17];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v, 16);
  (void)ec;
  return std::string(buf, ptr);
}

/// Shared state between a coalesced duplicate group's leader job and its
/// followers. Deadlock-free by construction: dispatch is FIFO and the
/// leader always has a lower job index than every follower, so by the time
/// a follower runs, its leader is already running (or done) on another
/// worker and never waits on anything itself. The leader publishes exactly
/// once — on training success, or on the real exception that
/// execute_contained will treat as permanent (the attempt budget is
/// exhausted), so a permanently failing leader fails its followers with
/// the same error instead of hanging them.
struct CoalesceGroup {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool ok = false;
  std::string error;
  const nas::EvaluationRecord* leader = nullptr;
  std::size_t throws = 0;  // real leader exceptions observed so far
};

void publish_success(CoalesceGroup& group, const nas::EvaluationRecord* rec) {
  std::lock_guard<std::mutex> lock(group.mu);
  group.leader = rec;
  group.ok = true;
  group.done = true;
  group.cv.notify_all();
}

void publish_throw_if_final(CoalesceGroup& group, const std::string& error,
                            std::size_t attempt_budget) {
  std::lock_guard<std::mutex> lock(group.mu);
  if (++group.throws >= attempt_budget && !group.done) {
    group.error = error;
    group.ok = false;
    group.done = true;
    group.cv.notify_all();
  }
}

}  // namespace

WorkflowEvaluator::WorkflowEvaluator(const TrainingLoop& loop,
                                     sched::ResourceManager& cluster,
                                     nas::SearchSpaceConfig space,
                                     std::uint64_t seed,
                                     lineage::LineageTracker* lineage)
    : loop_(&loop),
      cluster_(&cluster),
      space_(std::move(space)),
      seed_(seed),
      lineage_(lineage) {}

void WorkflowEvaluator::preload_records(
    std::vector<nas::EvaluationRecord> records) {
  for (auto& r : records) resume_pool_[r.model_id] = std::move(r);
}

void WorkflowEvaluator::flush_record(const nas::EvaluationRecord& record) {
  if (!lineage_) return;
  lineage_->record_evaluation(record);
  const std::size_t count = flushed_.fetch_add(1) + 1;
  if (crash_after_ > 0 && count >= crash_after_ && !crashed_.exchange(true)) {
    // Simulated process death: everything already flushed stays on disk;
    // every later write silently disappears, like a killed process.
    lineage_->seal();
  }
}

std::vector<nas::EvaluationRecord> WorkflowEvaluator::evaluate_generation(
    std::span<const nas::Genome> genomes, int generation) {
  return evaluate_generation(genomes, {}, generation);
}

std::vector<nas::EvaluationRecord> WorkflowEvaluator::evaluate_generation(
    std::span<const nas::Genome> genomes,
    std::span<const nas::Parentage> parents, int generation) {
  if (util::shutdown_requested()) {
    // Graceful stop (SIGINT/SIGTERM): every completed record is already
    // flushed to the commons, so a --resume run picks up exactly here.
    throw WorkflowInterrupted("shutdown requested before generation " +
                              std::to_string(generation));
  }
  util::trace::Scope gen_span("generation", "nas");
  gen_span.arg("generation", static_cast<double>(generation));
  gen_span.arg("genomes", static_cast<double>(genomes.size()));
  std::vector<nas::EvaluationRecord> records(genomes.size());

  // One job per genome. Each job owns a slot in `records`; jobs never touch
  // shared state, so they can run on any pool worker.
  std::vector<sched::Job> jobs;
  jobs.reserve(genomes.size());
  // Duplicate-coalescing groups for this generation, keyed by genome.
  std::unordered_map<std::string, std::shared_ptr<CoalesceGroup>> groups;
  const std::size_t attempt_budget = cluster_->config().fault.max_retries + 1;
  const int base_id = next_model_id_;
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    const nas::Genome genome = genomes[i];
    const int model_id = base_id + static_cast<int>(i);
    nas::EvaluationRecord* slot = &records[i];
    // Identify the slot up front so a job that fails permanently still
    // leaves a record naming its genome.
    slot->model_id = model_id;
    slot->genome = genome;
    slot->generation = generation;

    // Resume hit: identical model id and genome from a previous run.
    const auto cached = resume_pool_.find(model_id);
    if (cached != resume_pool_.end()) {
      if (cached->second.failed) {
        // A failed record holds no training result worth replaying (and
        // should never have reached the commons anyway): retrain.
        util::log_warn("resume: model ", model_id,
                       " stored record is a failure marker; retraining");
      } else if (cached->second.genome.key() == genome.key()) {
        *slot = cached->second;
        slot->generation = generation;
        ++resumed_;
        jobs.push_back(sched::Job{[slot] { return slot->virtual_seconds; }});
        continue;
      } else {
        // Stale commons (different seed or search config): the stored trail
        // is for another architecture, so it cannot be reused.
        util::log_warn("resume: model ", model_id, " genome mismatch (stored key=",
                       cached->second.genome.key(),
                       ", requested key=", genome.key(), "); retraining");
        ++genome_mismatches_;
      }
    }

    // Weight inheritance: warm-start from the first-named parent (the
    // tournament's first pick), resolved through the memo's canonical map
    // so a parent that was itself a cache replay (and thus wrote no
    // snapshots) redirects to the model that actually trained the genome —
    // identical weights, so kCold and kOn inherit the same tensors.
    // Resolved BEFORE the memo lookup: a child that will warm-start must
    // never be served a replay, because its result depends on the ancestor
    // — a cached record (trained from scratch or from a different parent)
    // would diverge from what a kCold run trains here.
    int ancestor = -1;
    if (loop_->config().inherit_weights && i < parents.size()) {
      const int raw = parents[i].parent_a >= 0 ? parents[i].parent_a
                                               : parents[i].parent_b;
      if (raw >= 0) {
        ancestor = memo_ ? memo_->canonical_model_of(raw) : raw;
        if (ancestor < 0) ancestor = raw;
      }
    }

    // Memo hit: this genome already has a journaled evaluation from an
    // earlier generation (or a warmed shared commons). Replay it under the
    // new model id: the pseudo-job reports the stored virtual duration so
    // the FIFO schedule — and therefore every later device placement — is
    // bit-identical to the run that trained it, and flushes the copied
    // record so the commons carries the same trails a cache-cold run
    // writes. `replayed` stays transient (never serialized). Only
    // parentless jobs are eligible: the memo admits only from-scratch
    // records, and warm-starting children bypass it entirely (above).
    if (memo_ && ancestor < 0) {
      if (const nas::EvaluationRecord* hit = memo_->lookup(genome)) {
        *slot = *hit;
        slot->model_id = model_id;
        slot->generation = generation;
        slot->replayed = true;
        ++memo_hits_;
        jobs.push_back(sched::Job{[this, slot] {
          flush_record(*slot);
          return slot->virtual_seconds;
        }});
        continue;
      }
    }

    // Per-model deterministic seed independent of execution order. Under
    // the memo (kCold and kOn alike) the seed is keyed by the genome, not
    // the model id, so a duplicate genome trained from scratch produces
    // the byte-identical record its cached twin would replay.
    const bool genome_keyed = memo_ && memo_->mode() != nas::MemoMode::kOff;
    const std::uint64_t model_seed =
        genome_keyed
            ? nas::memo_model_seed(seed_, genome)
            : seed_ ^ (0x9E3779B97F4A7C15ULL *
                       static_cast<std::uint64_t>(model_id + 1));

    // Same-generation duplicate coalescing: genome-keyed seeds make
    // duplicate trainings bit-identical, so the first occurrence of a
    // genome (the leader) trains and every later duplicate (follower)
    // waits for the leader's record instead of re-paying the training.
    // A follower flushes exactly the bytes its own training would have
    // journaled — same record content, same virtual seconds (so the FIFO
    // schedule and every later device placement are unchanged) — only the
    // accounting (nas.coalesced) tells the difference. Warm-starting
    // children are excluded: their result depends on the ancestor, not
    // just the genome.
    std::shared_ptr<CoalesceGroup> group;
    if (coalesce_ && genome_keyed && ancestor < 0) {
      auto [it, inserted] = groups.try_emplace(genome.key(), nullptr);
      if (inserted) {
        it->second = std::make_shared<CoalesceGroup>();
        group = it->second;
      } else {
        std::shared_ptr<CoalesceGroup> leader = it->second;
        jobs.push_back(
            sched::Job{[this, leader, slot, model_id, generation] {
              std::unique_lock<std::mutex> lock(leader->mu);
              leader->cv.wait(lock, [&] { return leader->done; });
              if (!leader->ok)
                // Replicate the leader's permanent failure: the rethrown
                // error exhausts this job's own attempt budget too, so the
                // follower's placement fails with the same message a
                // non-coalesced duplicate training would have produced.
                throw std::runtime_error(leader->error);
              *slot = *leader->leader;
              lock.unlock();
              slot->model_id = model_id;
              slot->generation = generation;
              slot->coalesced = true;
              flush_record(*slot);
              return slot->virtual_seconds;
            }});
        continue;
      }
    }

    sched::Job job{[this, genome, model_id, model_seed, generation, ancestor,
                    slot, group, attempt_budget] {
      try {
        *slot = ancestor >= 0
                    ? loop_->train_genome_inherited(genome, space_, model_id,
                                                    model_seed, ancestor)
                    : loop_->train_genome(genome, space_, model_id,
                                          model_seed);
        slot->generation = generation;
        flush_record(*slot);
        if (group) publish_success(*group, slot);
        return slot->virtual_seconds;
      } catch (const std::exception& e) {
        if (group) publish_throw_if_final(*group, e.what(), attempt_budget);
        throw;
      } catch (...) {
        if (group)
          publish_throw_if_final(*group, "unknown exception", attempt_budget);
        throw;
      }
    }};

    // Remote offering: what a cluster worker needs to reproduce this job
    // bit-exactly (cluster::JobRequest schema), and how to install its
    // result. Training is deterministic given (genome, space, model_id,
    // seed), so a remote record is byte-identical to a local one — the
    // genome-keyed memo seed rides the same payload field, so workers need
    // no cache awareness. Inherited jobs stay local-only: workers have no
    // access to the master's ancestor snapshots.
    if (ancestor >= 0) {
      jobs.push_back(std::move(job));
      continue;
    }
    util::Json payload = util::Json::object();
    payload["job"] = 0.0;  // dispatch id, stamped by the master
    payload["model_id"] = model_id;
    payload["generation"] = generation;
    payload["seed"] = seed_to_hex(model_seed);
    payload["genome"] = genome.to_json();
    // Default mode keeps the historical wire bytes (key absent).
    if (objective_ != nas::ObjectiveMode::kFlops)
      payload["objective"] = std::string(nas::objective_mode_name(objective_));
    job.remote_payload =
        std::make_shared<const util::Json>(std::move(payload));
    job.apply_remote = [this, genome, model_id, generation, slot,
                        group](const util::Json& doc) {
      nas::EvaluationRecord record = nas::EvaluationRecord::from_json(doc);
      if (record.model_id != model_id)
        throw std::runtime_error("remote record names model " +
                                 std::to_string(record.model_id) +
                                 ", expected " + std::to_string(model_id));
      if (record.genome.key() != genome.key())
        throw std::runtime_error("remote record genome mismatch for model " +
                                 std::to_string(model_id));
      if (record.failed)
        throw std::runtime_error("remote record is a failure marker: " +
                                 record.error);
      *slot = std::move(record);
      slot->generation = generation;
      flush_record(*slot);
      // A leader served by a cluster worker still unblocks its followers.
      if (group) publish_success(*group, slot);
      return slot->virtual_seconds;
    };
    jobs.push_back(std::move(job));
  }
  next_model_id_ += static_cast<int>(genomes.size());

  const sched::GenerationSchedule schedule =
      cluster_->run_generation(std::move(jobs));
  // Single-threaded accounting pass, in record order: metric counters here
  // bit-match any ad-hoc sum over the history in the same order.
  namespace trace = util::trace;
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].generation = generation;
    records[i].device_id = schedule.placements[i].device_id;
    if (schedule.placements[i].failed) {
      // The job never produced a result: mark the record failed instead of
      // letting a default-constructed trail masquerade as a fitness-0.0,
      // 0-FLOPs evaluation in selection and the commons.
      records[i].failed = true;
      records[i].error = schedule.placements[i].error;
      ++failed_;
      util::log_error("model ", records[i].model_id,
                      " failed permanently after retries: ",
                      schedule.placements[i].error);
    }
    // Replayed records carry the canonical record's provenance, not a warm
    // start paid this run (and the memo admits only from-scratch records
    // anyway): count inheritance for fresh evaluations only, mirroring the
    // engine-overhead split, so RunSummary.inherited_starts stays equal to
    // train.inherited_starts.
    const bool fresh_inherited =
        records[i].inherited_from_model >= 0 && !records[i].replayed;
    if (fresh_inherited) ++inherited_;
    if (records[i].coalesced && !records[i].failed) ++coalesced_;
    if (metrics_) {
      metrics_->counter("nas.evaluations").add();
      if (records[i].failed) metrics_->counter("nas.failed_evaluations").add();
      if (records[i].replayed) {
        // Honest engine accounting: a replayed record's journaled fit cost
        // (LM iterations, convergence checks) was paid once, by the
        // canonical evaluation. Re-counting it as fresh overhead would
        // inflate RunSummary's engine totals on every cache hit, so
        // replays land in their own counter.
        metrics_->counter("nas.memo_hits").add();
        metrics_->counter("penguin.engine_overhead_replayed_seconds")
            .add(records[i].engine_overhead_seconds);
      } else if (records[i].coalesced && !records[i].failed) {
        // Same split for coalesced duplicates: their engine cost was paid
        // once, by the group leader.
        metrics_->counter("nas.coalesced").add();
        metrics_->counter("penguin.engine_overhead_coalesced_seconds")
            .add(records[i].engine_overhead_seconds);
      } else {
        metrics_->counter("penguin.engine_overhead_seconds")
            .add(records[i].engine_overhead_seconds);
      }
      if (fresh_inherited)
        metrics_->counter("nas.inherited_evaluations").add();
    }
    // Hardware objectives: probe every record that does not already carry
    // a timing from *this* machine — fresh trainings, remote-trained
    // records, and memo/resume replays stamped on another host. Probing
    // happens here, before cache admission and the placement re-record, so
    // the memo and the commons both carry the probed fields; latency is
    // measured at the serving micro-batch geometry on the search machine,
    // never modeled and never trusted across hosts.
    if (probe_ && !records[i].failed &&
        records[i].latency_host != latency::host_fingerprint()) {
      util::Rng init_rng(nas::memo_model_seed(seed_, records[i].genome));
      nn::Model model =
          nas::decode_genome(records[i].genome, space_, init_rng);
      const latency::ProbeResult probed = probe_->probe(model);
      const latency::RooflineEstimate roofline =
          latency::roofline_estimate(model);
      records[i].latency_ms = probed.median_ms;
      records[i].latency_p99_ms = probed.p99_ms;
      records[i].bytes_moved = roofline.bytes_moved;
      records[i].arithmetic_intensity = roofline.arithmetic_intensity();
      records[i].latency_host = latency::host_fingerprint();
      ++probed_;
      if (metrics_) metrics_->counter("latency.probes").add();
      if (trace::enabled()) {
        trace::emit_instant(
            "latency.probe", "latency", trace::now_us(), trace::kHostPid,
            trace::current_tid(),
            {{"model_id", static_cast<double>(records[i].model_id)},
             {"latency_ms", records[i].latency_ms},
             {"latency_p99_ms", records[i].latency_p99_ms},
             {"bytes_moved", static_cast<double>(records[i].bytes_moved)}});
      }
    }
    // Cache admission happens here, in the single-threaded accounting
    // pass, so insertion order is deterministic and failures (which the
    // memo rejects anyway) have already been marked by the schedule.
    if (memo_ && !records[i].failed) memo_->insert(records[i]);
    if (trace::enabled()) {
      trace::emit_instant(
          "record.accounting", "nas", trace::now_us(), trace::kHostPid,
          trace::current_tid(),
          {{"model_id", static_cast<double>(records[i].model_id)},
           {"failed", records[i].failed ? 1.0 : 0.0},
           {"engine_overhead_seconds", records[i].engine_overhead_seconds},
           {"retries", static_cast<double>(schedule.placements[i].retries)},
           {"wasted_seconds", schedule.placements[i].wasted_seconds}});
    }
  }
  schedules_.push_back(schedule);

  if (lineage_) {
    // Re-record with the device placement stamped in (no-ops when sealed).
    // Failed records never reach the commons: a journaled failure would be
    // replayed on resume and fed to analytics as a real evaluation.
    for (const auto& record : records) {
      if (!record.failed) lineage_->record_evaluation(record);
    }
  }

  if (crashed_.load())
    throw WorkflowInterrupted(
        "workflow interrupted after flushing " +
        std::to_string(flushed_.load()) + " evaluation records");
  return records;
}

}  // namespace a4nn::orchestrator
