#include "penguin/curve_fit.hpp"

#include <cmath>
#include <stdexcept>

namespace a4nn::penguin {

bool solve_dense(std::vector<double>& a, std::vector<double>& b,
                 std::size_t n) {
  if (a.size() != n * n || b.size() != n)
    throw std::invalid_argument("solve_dense: dimension mismatch");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row * n + col]) > std::fabs(a[pivot * n + col]))
        pivot = row;
    }
    if (std::fabs(a[pivot * n + col]) < 1e-14) return false;
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j)
        std::swap(a[col * n + j], a[pivot * n + j]);
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] * inv;
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < n; ++j)
        a[row * n + j] -= factor * a[col * n + j];
      b[row] -= factor * b[col];
    }
  }
  for (std::size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (std::size_t j = row + 1; j < n; ++j) acc -= a[row * n + j] * b[j];
    b[row] = acc / a[row * n + row];
  }
  return true;
}

namespace {

std::vector<double> residual_weights(std::span<const double> xs,
                                     const FitOptions& options) {
  std::vector<double> w(xs.size(), 1.0);
  if (options.epoch_weight_power <= 0.0 || xs.empty()) return w;
  double x_max = xs[0];
  for (double x : xs) x_max = std::max(x_max, x);
  if (x_max <= 0.0) return w;
  for (std::size_t i = 0; i < xs.size(); ++i)
    w[i] = std::pow(xs[i] / x_max, options.epoch_weight_power);
  return w;
}

double sse_of(const ParametricFunction& f, std::span<const double> params,
              std::span<const double> xs, std::span<const double> ys,
              std::span<const double> weights) {
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = f.eval(params, xs[i]) - ys[i];
    acc += weights[i] * r * r;
  }
  return acc;
}

}  // namespace

std::optional<FitResult> fit_curve(const ParametricFunction& f,
                                   std::span<const double> xs,
                                   std::span<const double> ys,
                                   const FitOptions& options) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("fit_curve: xs/ys size mismatch");
  const std::size_t np = f.param_count();
  if (xs.size() < np) return std::nullopt;  // under-determined

  auto guess = f.initial_guess(xs, ys);
  if (!guess || !f.valid_params(*guess)) return std::nullopt;

  const std::vector<double> weights = residual_weights(xs, options);
  std::vector<double> params = *guess;
  double sse = sse_of(f, params, xs, ys, weights);
  if (!std::isfinite(sse)) return std::nullopt;
  double lambda = options.initial_lambda;

  std::vector<double> jtj(np * np), jtr(np), grad(np);
  std::vector<double> lhs, rhs, candidate(np);
  std::size_t performed = 0;
  bool converged = false;
  for (std::size_t iter = 0; iter < options.max_iterations && !converged;
       ++iter) {
    ++performed;
    // Assemble normal equations J^T J and J^T r.
    std::fill(jtj.begin(), jtj.end(), 0.0);
    std::fill(jtr.begin(), jtr.end(), 0.0);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      f.gradient(params, xs[i], grad);
      const double r = f.eval(params, xs[i]) - ys[i];
      const double w = weights[i];
      for (std::size_t a = 0; a < np; ++a) {
        jtr[a] += w * grad[a] * r;
        for (std::size_t b = 0; b < np; ++b)
          jtj[a * np + b] += w * grad[a] * grad[b];
      }
    }

    bool improved = false;
    // Try increasing damping until a step improves the SSE.
    for (int attempt = 0; attempt < 8; ++attempt) {
      lhs = jtj;
      for (std::size_t a = 0; a < np; ++a)
        lhs[a * np + a] += lambda * (jtj[a * np + a] + 1e-12);
      rhs = jtr;
      for (double& v : rhs) v = -v;
      if (!solve_dense(lhs, rhs, np)) {
        lambda *= options.lambda_up;
        continue;
      }
      for (std::size_t a = 0; a < np; ++a) candidate[a] = params[a] + rhs[a];
      if (!f.valid_params(candidate)) {
        lambda *= options.lambda_up;
        continue;
      }
      const double new_sse = sse_of(f, candidate, xs, ys, weights);
      if (std::isfinite(new_sse) && new_sse < sse) {
        const double rel = (sse - new_sse) / std::max(sse, 1e-12);
        params = candidate;
        sse = new_sse;
        lambda = std::max(lambda * options.lambda_down, 1e-12);
        improved = true;
        if (rel < options.tolerance) converged = true;
        break;
      }
      lambda *= options.lambda_up;
    }
    if (!improved) break;  // stuck: accept current parameters
  }

  if (!f.valid_params(params)) return std::nullopt;
  FitResult result;
  result.params = std::move(params);
  result.sse = sse;
  result.iterations = performed;
  result.converged = converged;
  return result;
}

}  // namespace a4nn::penguin
