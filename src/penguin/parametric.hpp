// Parametric fitness-curve families for the prediction engine.
//
// The paper's engine models an NN's fitness (validation accuracy) learning
// curve with a concave saturating parametric function — the default is
// F(x) = a - b^(c - x) — fits it to the partial learning curve by least
// squares, and extrapolates the fitness at a future epoch e_pred. Several
// families are provided so the "which parametric functions best predict
// fitness?" question from the paper's conclusions is explorable
// (bench_ablation_functions).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <tuple>
#include <vector>

namespace a4nn::penguin {

class ParametricFunction {
 public:
  virtual ~ParametricFunction() = default;

  virtual std::string name() const = 0;
  virtual std::size_t param_count() const = 0;

  /// F(params, x).
  virtual double eval(std::span<const double> params, double x) const = 0;

  /// dF/dparam_i at x, written into `out` (size param_count()).
  virtual void gradient(std::span<const double> params, double x,
                        std::span<double> out) const = 0;

  /// Heuristic starting point for the fit given the observed curve.
  /// Returns nullopt if the data admits no sensible guess yet (e.g. a
  /// non-increasing curve for a saturating family).
  virtual std::optional<std::vector<double>> initial_guess(
      std::span<const double> xs, std::span<const double> ys) const = 0;

  /// True if the parameter vector is inside the family's valid domain.
  virtual bool valid_params(std::span<const double> params) const = 0;
};

using FunctionPtr = std::shared_ptr<const ParametricFunction>;

/// The paper's default: F(x) = a - b^(c - x), b > 1. Concave, increasing,
/// saturating at `a`.
FunctionPtr make_pow_exp();

/// Inverse power law: F(x) = a - b * x^(-c), c > 0.
FunctionPtr make_inverse_power();

/// Logistic: F(x) = a / (1 + exp(-b * (x - c))), b > 0.
FunctionPtr make_logistic();

/// Vapor-pressure style (Domhan et al.): F(x) = exp(a + b / x + c * ln x).
FunctionPtr make_vapor_pressure();

/// Scaled Weibull CDF: F(x) = a * (1 - exp(-(x/b)^c)).
FunctionPtr make_weibull();

/// Iterated log: F(x) = a - b / ln(x + c).
FunctionPtr make_ilog();

/// Janoschek growth: F(x) = a - (a - b) * exp(-c x).
FunctionPtr make_janoschek();

/// Morgan-Mercer-Flodin: F(x) = a - a b / (b + x^c).
FunctionPtr make_mmf();

/// Registry lookup by name ("pow_exp", "inverse_power", "logistic",
/// "vapor_pressure", "weibull", "ilog", "janoschek", "mmf"); throws on
/// unknown names.
FunctionPtr make_function(const std::string& name);
std::vector<std::string> function_names();

/// Inverse-SSE-weighted ensemble over several families: each member is
/// fitted independently and the extrapolated predictions are averaged with
/// weights 1/(sse + eps) — Domhan et al.'s observation that ensembles of
/// learning-curve models beat any single family. Returns nullopt when no
/// member admits a valid fit.
struct EnsembleFit {
  double prediction = 0.0;
  /// (family name, member prediction, member weight) per admitted member.
  std::vector<std::tuple<std::string, double, double>> members;
};
std::optional<EnsembleFit> ensemble_predict(
    const std::vector<FunctionPtr>& families, std::span<const double> xs,
    std::span<const double> ys, double x_pred);

}  // namespace a4nn::penguin
