// Nonlinear least-squares curve fitting (Levenberg-Marquardt) for the
// parametric fitness families. Small dense problems: 3 parameters, tens of
// data points, so the normal equations are solved directly.
#pragma once

#include <optional>

#include "penguin/parametric.hpp"

namespace a4nn::penguin {

struct FitOptions {
  std::size_t max_iterations = 100;
  double initial_lambda = 1e-3;
  double lambda_up = 10.0;
  double lambda_down = 0.3;
  /// Converged when the relative SSE improvement drops below this.
  double tolerance = 1e-10;
  /// Weight residual i by (x_i / x_max)^epoch_weight_power. Learning
  /// curves are heteroscedastic — early epochs are noisy and far from the
  /// plateau — so up-weighting later epochs sharpens the plateau estimate
  /// the engine extrapolates. 0 disables weighting.
  double epoch_weight_power = 1.0;
};

struct FitResult {
  std::vector<double> params;
  double sse = 0.0;         // final sum of squared residuals
  /// Levenberg-Marquardt passes actually performed. On early convergence
  /// this is the true count, not max_iterations — the engine-overhead and
  /// convergence analytics downstream depend on it being honest.
  std::size_t iterations = 0;
  /// True when the relative SSE improvement dropped below `tolerance`
  /// (as opposed to stalling or exhausting the iteration budget).
  bool converged = false;
};

/// Fit `f` to (xs, ys) starting from the family's initial_guess. Returns
/// nullopt when no valid guess exists or the optimization leaves the
/// family's valid domain — the prediction analyzer treats that as
/// "no prediction this epoch".
std::optional<FitResult> fit_curve(const ParametricFunction& f,
                                   std::span<const double> xs,
                                   std::span<const double> ys,
                                   const FitOptions& options = {});

/// Solve A x = b for small dense symmetric systems (Gaussian elimination
/// with partial pivoting). Returns false if singular. Exposed for tests.
bool solve_dense(std::vector<double>& a, std::vector<double>& b,
                 std::size_t n);

}  // namespace a4nn::penguin
