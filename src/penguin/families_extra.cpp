// Extended parametric family pool (Domhan et al.'s learning-curve zoo),
// feeding the paper's open question "which parametric functions are best
// able to predict neural architecture fitness?". All are concave,
// saturating families with three parameters so they drop into the same
// Levenberg-Marquardt fitter and engine configuration.
#include <cmath>
#include <stdexcept>

#include "penguin/parametric.hpp"
#include "util/stats.hpp"

namespace a4nn::penguin {

namespace {

/// Weibull CDF scaled to a plateau: F(x) = a * (1 - exp(-(x/b)^c)),
/// a > 0, b > 0, c > 0.
class Weibull final : public ParametricFunction {
 public:
  std::string name() const override { return "weibull"; }
  std::size_t param_count() const override { return 3; }

  double eval(std::span<const double> p, double x) const override {
    return p[0] * (1.0 - std::exp(-std::pow(x / p[1], p[2])));
  }

  void gradient(std::span<const double> p, double x,
                std::span<double> out) const override {
    const double z = std::pow(x / p[1], p[2]);
    const double e = std::exp(-z);
    out[0] = 1.0 - e;
    out[1] = -p[0] * e * z * p[2] / p[1];
    out[2] = p[0] * e * z * std::log(x / p[1]);
  }

  std::optional<std::vector<double>> initial_guess(
      std::span<const double> xs, std::span<const double> ys) const override {
    const double a0 = util::max_of(ys) + 1.0;
    const double b0 = util::median(xs);
    if (b0 <= 0.0) return std::nullopt;
    return std::vector<double>{a0, b0, 1.0};
  }

  bool valid_params(std::span<const double> p) const override {
    return p[0] > 0.0 && p[1] > 0.0 && p[2] > 0.0 && p[2] < 50.0;
  }
};

/// Iterated log: F(x) = a - b / ln(x + c), c > 1 so the log is positive
/// from epoch 1 on.
class IlogLinear final : public ParametricFunction {
 public:
  std::string name() const override { return "ilog"; }
  std::size_t param_count() const override { return 3; }

  double eval(std::span<const double> p, double x) const override {
    return p[0] - p[1] / std::log(x + p[2]);
  }

  void gradient(std::span<const double> p, double x,
                std::span<double> out) const override {
    const double l = std::log(x + p[2]);
    out[0] = 1.0;
    out[1] = -1.0 / l;
    out[2] = p[1] / (l * l * (x + p[2]));
  }

  std::optional<std::vector<double>> initial_guess(
      std::span<const double> xs, std::span<const double> ys) const override {
    (void)xs;
    const double a0 = util::max_of(ys) + 1.0;
    const double gap = a0 - ys[0];
    if (gap <= 0.0) return std::nullopt;
    return std::vector<double>{a0, gap * std::log(2.0 + 1.5), 1.5};
  }

  bool valid_params(std::span<const double> p) const override {
    return std::isfinite(p[0]) && p[1] > 0.0 && p[2] > 1.0;
  }
};

/// Janoschek growth curve: F(x) = a - (a - b) * exp(-c * x), a plateau,
/// b starting level, c rate. (Equivalent to exp3 up to parametrization.)
class Janoschek final : public ParametricFunction {
 public:
  std::string name() const override { return "janoschek"; }
  std::size_t param_count() const override { return 3; }

  double eval(std::span<const double> p, double x) const override {
    return p[0] - (p[0] - p[1]) * std::exp(-p[2] * x);
  }

  void gradient(std::span<const double> p, double x,
                std::span<double> out) const override {
    const double e = std::exp(-p[2] * x);
    out[0] = 1.0 - e;
    out[1] = e;
    out[2] = (p[0] - p[1]) * x * e;
  }

  std::optional<std::vector<double>> initial_guess(
      std::span<const double> xs, std::span<const double> ys) const override {
    const double a0 = util::max_of(ys) + 1.0;
    const double b0 = ys[0];
    const double span_x = util::max_of(xs) - util::min_of(xs);
    if (span_x <= 0.0 || a0 <= b0) return std::nullopt;
    return std::vector<double>{a0, b0, 2.0 / span_x};
  }

  bool valid_params(std::span<const double> p) const override {
    return std::isfinite(p[0]) && std::isfinite(p[1]) && p[2] > 0.0 &&
           p[0] > p[1];
  }
};

/// Morgan-Mercer-Flodin: F(x) = a - a*b / (b + x^c), b > 0, c > 0.
/// Starts at 0, saturates at a.
class Mmf final : public ParametricFunction {
 public:
  std::string name() const override { return "mmf"; }
  std::size_t param_count() const override { return 3; }

  double eval(std::span<const double> p, double x) const override {
    const double xc = std::pow(x, p[2]);
    return p[0] - p[0] * p[1] / (p[1] + xc);
  }

  void gradient(std::span<const double> p, double x,
                std::span<double> out) const override {
    const double xc = std::pow(x, p[2]);
    const double denom = p[1] + xc;
    out[0] = 1.0 - p[1] / denom;
    out[1] = -p[0] * xc / (denom * denom);
    out[2] = p[0] * p[1] * xc * std::log(x) / (denom * denom);
  }

  std::optional<std::vector<double>> initial_guess(
      std::span<const double> xs, std::span<const double> ys) const override {
    (void)xs;
    const double a0 = util::max_of(ys) + 1.0;
    return std::vector<double>{a0, 2.0, 1.0};
  }

  bool valid_params(std::span<const double> p) const override {
    return p[0] > 0.0 && p[1] > 0.0 && p[2] > 0.0 && p[2] < 50.0;
  }
};

}  // namespace

FunctionPtr make_weibull() { return std::make_shared<Weibull>(); }
FunctionPtr make_ilog() { return std::make_shared<IlogLinear>(); }
FunctionPtr make_janoschek() { return std::make_shared<Janoschek>(); }
FunctionPtr make_mmf() { return std::make_shared<Mmf>(); }

}  // namespace a4nn::penguin
