#include "penguin/parametric.hpp"

#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace a4nn::penguin {

namespace {

/// F(x) = a - b^(c - x), b > 1.
/// Rewriting b^(c-x) = exp((c - x) * ln b) keeps evaluation stable.
class PowExp final : public ParametricFunction {
 public:
  std::string name() const override { return "pow_exp"; }
  std::size_t param_count() const override { return 3; }

  double eval(std::span<const double> p, double x) const override {
    const double a = p[0], b = p[1], c = p[2];
    return a - std::exp((c - x) * std::log(b));
  }

  void gradient(std::span<const double> p, double x,
                std::span<double> out) const override {
    const double a = p[0], b = p[1], c = p[2];
    (void)a;
    const double log_b = std::log(b);
    const double term = std::exp((c - x) * log_b);  // b^(c-x)
    out[0] = 1.0;
    out[1] = -term * (c - x) / b;
    out[2] = -term * log_b;
  }

  std::optional<std::vector<double>> initial_guess(
      std::span<const double> xs, std::span<const double> ys) const override {
    // a ~ plateau slightly above the best observation; then
    // ln(a - y) = (ln b) * c - (ln b) * x is linear in x.
    const double a0 = util::max_of(ys) + 1.0;
    std::vector<double> lx, lg;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double gap = a0 - ys[i];
      if (gap <= 0.0) continue;
      lx.push_back(xs[i]);
      lg.push_back(std::log(gap));
    }
    if (lx.size() < 2) return std::nullopt;
    const auto fit = util::linear_fit(lx, lg);
    const double log_b = -fit.slope;
    if (log_b <= 1e-9) return std::nullopt;  // curve is not increasing
    const double b0 = std::exp(log_b);
    const double c0 = fit.intercept / log_b;
    return std::vector<double>{a0, b0, c0};
  }

  bool valid_params(std::span<const double> p) const override {
    return std::isfinite(p[0]) && std::isfinite(p[1]) && std::isfinite(p[2]) &&
           p[1] > 1.0;
  }
};

/// F(x) = a - b * x^(-c), b > 0, c > 0.
class InversePower final : public ParametricFunction {
 public:
  std::string name() const override { return "inverse_power"; }
  std::size_t param_count() const override { return 3; }

  double eval(std::span<const double> p, double x) const override {
    return p[0] - p[1] * std::pow(x, -p[2]);
  }

  void gradient(std::span<const double> p, double x,
                std::span<double> out) const override {
    const double xp = std::pow(x, -p[2]);
    out[0] = 1.0;
    out[1] = -xp;
    out[2] = p[1] * xp * std::log(x);
  }

  std::optional<std::vector<double>> initial_guess(
      std::span<const double> xs, std::span<const double> ys) const override {
    const double a0 = util::max_of(ys) + 1.0;
    // ln(a - y) = ln b - c ln x.
    std::vector<double> lx, lg;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double gap = a0 - ys[i];
      if (gap <= 0.0 || xs[i] <= 0.0) continue;
      lx.push_back(std::log(xs[i]));
      lg.push_back(std::log(gap));
    }
    if (lx.size() < 2) return std::nullopt;
    const auto fit = util::linear_fit(lx, lg);
    const double c0 = -fit.slope;
    if (c0 <= 1e-9) return std::nullopt;
    return std::vector<double>{a0, std::exp(fit.intercept), c0};
  }

  bool valid_params(std::span<const double> p) const override {
    return std::isfinite(p[0]) && p[1] > 0.0 && p[2] > 0.0;
  }
};

/// F(x) = a / (1 + exp(-b (x - c))), a > 0, b > 0.
class Logistic final : public ParametricFunction {
 public:
  std::string name() const override { return "logistic"; }
  std::size_t param_count() const override { return 3; }

  double eval(std::span<const double> p, double x) const override {
    return p[0] / (1.0 + std::exp(-p[1] * (x - p[2])));
  }

  void gradient(std::span<const double> p, double x,
                std::span<double> out) const override {
    const double e = std::exp(-p[1] * (x - p[2]));
    const double denom = 1.0 + e;
    out[0] = 1.0 / denom;
    out[1] = p[0] * e * (x - p[2]) / (denom * denom);
    out[2] = -p[0] * e * p[1] / (denom * denom);
  }

  std::optional<std::vector<double>> initial_guess(
      std::span<const double> xs, std::span<const double> ys) const override {
    const double a0 = util::max_of(ys) + 1.0;
    // Midpoint near the median x; slope from the observed range.
    const double c0 = util::median(xs);
    const double span_x = util::max_of(xs) - util::min_of(xs);
    if (span_x <= 0.0) return std::nullopt;
    return std::vector<double>{a0, 2.0 / span_x, c0};
  }

  bool valid_params(std::span<const double> p) const override {
    return p[0] > 0.0 && p[1] > 0.0 && std::isfinite(p[2]);
  }
};

/// F(x) = exp(a + b / x + c * ln x).
class VaporPressure final : public ParametricFunction {
 public:
  std::string name() const override { return "vapor_pressure"; }
  std::size_t param_count() const override { return 3; }

  double eval(std::span<const double> p, double x) const override {
    return std::exp(p[0] + p[1] / x + p[2] * std::log(x));
  }

  void gradient(std::span<const double> p, double x,
                std::span<double> out) const override {
    const double f = eval(p, x);
    out[0] = f;
    out[1] = f / x;
    out[2] = f * std::log(x);
  }

  std::optional<std::vector<double>> initial_guess(
      std::span<const double> xs, std::span<const double> ys) const override {
    // ln y = a + b / x + c ln x: least squares on the log curve would need
    // a 3-column solve; a coarse guess is enough for LM to take over.
    for (double y : ys) {
      if (y <= 0.0) return std::nullopt;
    }
    const double ly_last = std::log(ys[ys.size() - 1]);
    return std::vector<double>{ly_last, -1.0, 0.1};
  }

  bool valid_params(std::span<const double> p) const override {
    return std::isfinite(p[0]) && std::isfinite(p[1]) && std::isfinite(p[2]);
  }
};

}  // namespace

FunctionPtr make_pow_exp() { return std::make_shared<PowExp>(); }
FunctionPtr make_inverse_power() { return std::make_shared<InversePower>(); }
FunctionPtr make_logistic() { return std::make_shared<Logistic>(); }
FunctionPtr make_vapor_pressure() { return std::make_shared<VaporPressure>(); }

FunctionPtr make_function(const std::string& name) {
  if (name == "pow_exp") return make_pow_exp();
  if (name == "inverse_power") return make_inverse_power();
  if (name == "logistic") return make_logistic();
  if (name == "vapor_pressure") return make_vapor_pressure();
  if (name == "weibull") return make_weibull();
  if (name == "ilog") return make_ilog();
  if (name == "janoschek") return make_janoschek();
  if (name == "mmf") return make_mmf();
  throw std::invalid_argument("make_function: unknown family '" + name + "'");
}

std::vector<std::string> function_names() {
  return {"pow_exp", "inverse_power", "logistic", "vapor_pressure",
          "weibull",  "ilog",          "janoschek", "mmf"};
}

}  // namespace a4nn::penguin
