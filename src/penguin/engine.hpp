// The parametric prediction engine (PENGUIN-style).
//
// Self-contained and externally controllable: the NAS never calls it
// directly — the workflow orchestrator feeds it the fitness history after
// every training epoch (Algorithm 1 in the paper) and asks two questions:
//   predictor(e, H): what fitness will this NN reach at epoch e_pred?
//   analyzer(P):     have the recent predictions converged to a stable,
//                    in-bounds value?
// When the analyzer reports convergence, the orchestrator terminates the
// NN's training early and hands the converged prediction to the NAS as the
// network's final fitness.
#pragma once

#include <optional>

#include "penguin/curve_fit.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"

namespace a4nn::penguin {

/// Table 1 of the paper. Defaults match the paper's configuration.
struct EngineConfig {
  FunctionPtr function;          // F: parametric fitness model (pow_exp)
  /// If non-empty, predictions come from an inverse-SSE-weighted ensemble
  /// over these families instead of the single `function` (the paper's
  /// "which parametric functions predict best?" extension).
  std::vector<FunctionPtr> ensemble;
  std::size_t c_min = 3;         // min epochs of history before predicting
  double e_pred = 25.0;          // epoch for which fitness is predicted
  std::size_t window = 3;        // N: predictions considered for convergence
  double tolerance = 0.5;        // r: allowed variance across the window
  double fitness_lo = 0.0;       // valid fitness bounds (accuracy in %)
  double fitness_hi = 100.0;
  FitOptions fit;

  /// Serialized into every record trail so a search is reproducible.
  util::Json to_json() const;
};

/// Default-configured engine settings (paper Table 1).
EngineConfig default_engine_config();

class PredictionEngine {
 public:
  explicit PredictionEngine(EngineConfig config);

  /// Parametric modeling step: fit F to the fitness history (epoch i ->
  /// history[i-1], 1-based epochs) and extrapolate to e_pred. Returns
  /// nullopt when there are fewer than C_min points or the fit fails.
  std::optional<double> predict(std::span<const double> fitness_history) const;

  /// Prediction-analyzer step: true when the last N predictions are all
  /// within the valid fitness bounds and their variance is <= r.
  bool converged(std::span<const double> prediction_history) const;

  /// Fitted parameters for the current history (for the analyzer/figures).
  std::optional<FitResult> fit(std::span<const double> fitness_history) const;

  const EngineConfig& config() const { return config_; }

  /// Attach a metrics registry: fits, LM iterations, predictions, and
  /// convergence checks are counted there. Pass nullptr to detach. The
  /// registry must outlive the engine.
  void set_metrics(util::metrics::Registry* registry);

 private:
  EngineConfig config_;
  util::metrics::Counter* fits_ = nullptr;
  util::metrics::Counter* lm_iterations_ = nullptr;
  util::metrics::Counter* predictions_ = nullptr;
  util::metrics::Counter* convergence_checks_ = nullptr;
};

/// Offline replay of Algorithm 1 over a fully recorded fitness curve:
/// "had this engine been plugged in, when would training have stopped and
/// what fitness would it have reported?" Used by the ablation benches to
/// compare parametric families and convergence policies on identical
/// learning curves without retraining anything.
struct SimulatedTermination {
  std::size_t epochs_trained = 0;   // e_t, or the full curve length
  bool early_terminated = false;
  /// P.back() when training actually stopped early; the measured final
  /// fitness otherwise. Convergence that lands exactly on the last epoch
  /// saves nothing, so the measured value wins — TrainingLoop applies the
  /// same rule and a shared test keeps the two in lockstep.
  double reported_fitness = 0.0;
  std::vector<double> prediction_history;
};
SimulatedTermination simulate_early_termination(
    std::span<const double> fitness_curve, const PredictionEngine& engine);

}  // namespace a4nn::penguin
