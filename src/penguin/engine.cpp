#include "penguin/engine.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/stats.hpp"

namespace a4nn::penguin {

util::Json EngineConfig::to_json() const {
  util::Json j = util::Json::object();
  j["function"] = function ? function->name() : "none";
  if (!ensemble.empty()) {
    util::Json members = util::Json::array();
    for (const auto& f : ensemble) members.push_back(f ? f->name() : "none");
    j["ensemble"] = std::move(members);
  }
  j["c_min"] = c_min;
  j["e_pred"] = e_pred;
  j["window"] = window;
  j["tolerance"] = tolerance;
  j["fitness_lo"] = fitness_lo;
  j["fitness_hi"] = fitness_hi;
  return j;
}

EngineConfig default_engine_config() {
  EngineConfig config;
  config.function = make_pow_exp();
  return config;
}

PredictionEngine::PredictionEngine(EngineConfig config)
    : config_(std::move(config)) {
  if (!config_.function)
    throw std::invalid_argument("PredictionEngine: no parametric function");
  if (config_.c_min < config_.function->param_count())
    throw std::invalid_argument(
        "PredictionEngine: C_min below the function's parameter count");
  if (config_.window == 0)
    throw std::invalid_argument("PredictionEngine: window must be >= 1");
  if (config_.tolerance < 0.0)
    throw std::invalid_argument("PredictionEngine: tolerance must be >= 0");
}

std::optional<FitResult> PredictionEngine::fit(
    std::span<const double> fitness_history) const {
  if (fitness_history.size() < config_.c_min) return std::nullopt;
  std::vector<double> xs(fitness_history.size());
  std::iota(xs.begin(), xs.end(), 1.0);  // epochs are 1-based
  return fit_curve(*config_.function, xs, fitness_history, config_.fit);
}

std::optional<double> PredictionEngine::predict(
    std::span<const double> fitness_history) const {
  if (!config_.ensemble.empty()) {
    if (fitness_history.size() < config_.c_min) return std::nullopt;
    std::vector<double> xs(fitness_history.size());
    std::iota(xs.begin(), xs.end(), 1.0);
    const auto ens = ensemble_predict(config_.ensemble, xs, fitness_history,
                                      config_.e_pred);
    if (!ens || !std::isfinite(ens->prediction)) return std::nullopt;
    return ens->prediction;
  }
  const auto result = fit(fitness_history);
  if (!result) return std::nullopt;
  const double prediction =
      config_.function->eval(result->params, config_.e_pred);
  if (!std::isfinite(prediction)) return std::nullopt;
  return prediction;
}

bool PredictionEngine::converged(
    std::span<const double> prediction_history) const {
  if (prediction_history.size() < config_.window) return false;
  const auto recent =
      prediction_history.subspan(prediction_history.size() - config_.window);
  // Validity bounds: accuracy can be neither negative nor above 100%; an
  // out-of-bounds prediction means the fitted curve is not trustworthy yet.
  for (double p : recent) {
    if (!(p >= config_.fitness_lo && p <= config_.fitness_hi)) return false;
  }
  return util::variance(recent) <= config_.tolerance;
}

SimulatedTermination simulate_early_termination(
    std::span<const double> fitness_curve, const PredictionEngine& engine) {
  SimulatedTermination out;
  std::vector<double> history;
  for (std::size_t e = 0; e < fitness_curve.size(); ++e) {
    history.push_back(fitness_curve[e]);
    out.epochs_trained = e + 1;
    const std::optional<double> p = engine.predict(history);
    if (p) out.prediction_history.push_back(*p);
    if (engine.converged(out.prediction_history)) {
      out.early_terminated = out.epochs_trained < fitness_curve.size();
      out.reported_fitness = out.prediction_history.back();
      return out;
    }
  }
  out.reported_fitness = history.empty() ? 0.0 : history.back();
  return out;
}

}  // namespace a4nn::penguin
