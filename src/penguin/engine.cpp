#include "penguin/engine.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/stats.hpp"
#include "util/trace.hpp"

namespace a4nn::penguin {

util::Json EngineConfig::to_json() const {
  util::Json j = util::Json::object();
  j["function"] = function ? function->name() : "none";
  if (!ensemble.empty()) {
    util::Json members = util::Json::array();
    for (const auto& f : ensemble) members.push_back(f ? f->name() : "none");
    j["ensemble"] = std::move(members);
  }
  j["c_min"] = c_min;
  j["e_pred"] = e_pred;
  j["window"] = window;
  j["tolerance"] = tolerance;
  j["fitness_lo"] = fitness_lo;
  j["fitness_hi"] = fitness_hi;
  return j;
}

EngineConfig default_engine_config() {
  EngineConfig config;
  config.function = make_pow_exp();
  return config;
}

PredictionEngine::PredictionEngine(EngineConfig config)
    : config_(std::move(config)) {
  if (!config_.function)
    throw std::invalid_argument("PredictionEngine: no parametric function");
  if (config_.c_min < config_.function->param_count())
    throw std::invalid_argument(
        "PredictionEngine: C_min below the function's parameter count");
  if (config_.window == 0)
    throw std::invalid_argument("PredictionEngine: window must be >= 1");
  if (config_.tolerance < 0.0)
    throw std::invalid_argument("PredictionEngine: tolerance must be >= 0");
}

void PredictionEngine::set_metrics(util::metrics::Registry* registry) {
  if (!registry) {
    fits_ = lm_iterations_ = predictions_ = convergence_checks_ = nullptr;
    return;
  }
  fits_ = &registry->counter("penguin.fits");
  lm_iterations_ = &registry->counter("penguin.lm_iterations");
  predictions_ = &registry->counter("penguin.predictions");
  convergence_checks_ = &registry->counter("penguin.convergence_checks");
}

std::optional<FitResult> PredictionEngine::fit(
    std::span<const double> fitness_history) const {
  if (fitness_history.size() < config_.c_min) return std::nullopt;
  util::trace::Scope span("engine.fit", "penguin");
  std::vector<double> xs(fitness_history.size());
  std::iota(xs.begin(), xs.end(), 1.0);  // epochs are 1-based
  auto result = fit_curve(*config_.function, xs, fitness_history, config_.fit);
  if (fits_) fits_->add();
  if (result) {
    if (lm_iterations_)
      lm_iterations_->add(static_cast<double>(result->iterations));
    span.arg("iterations", static_cast<double>(result->iterations));
    span.arg("sse", result->sse);
  }
  return result;
}

std::optional<double> PredictionEngine::predict(
    std::span<const double> fitness_history) const {
  if (predictions_) predictions_->add();
  if (!config_.ensemble.empty()) {
    if (fitness_history.size() < config_.c_min) return std::nullopt;
    std::vector<double> xs(fitness_history.size());
    std::iota(xs.begin(), xs.end(), 1.0);
    const auto ens = ensemble_predict(config_.ensemble, xs, fitness_history,
                                      config_.e_pred);
    if (!ens || !std::isfinite(ens->prediction)) return std::nullopt;
    return ens->prediction;
  }
  const auto result = fit(fitness_history);
  if (!result) return std::nullopt;
  const double prediction =
      config_.function->eval(result->params, config_.e_pred);
  if (!std::isfinite(prediction)) return std::nullopt;
  return prediction;
}

bool PredictionEngine::converged(
    std::span<const double> prediction_history) const {
  if (convergence_checks_) convergence_checks_->add();
  if (prediction_history.size() < config_.window) return false;
  const auto recent =
      prediction_history.subspan(prediction_history.size() - config_.window);
  // Validity bounds: accuracy can be neither negative nor above 100%; an
  // out-of-bounds prediction means the fitted curve is not trustworthy yet.
  for (double p : recent) {
    if (!(p >= config_.fitness_lo && p <= config_.fitness_hi)) return false;
  }
  return util::variance(recent) <= config_.tolerance;
}

SimulatedTermination simulate_early_termination(
    std::span<const double> fitness_curve, const PredictionEngine& engine) {
  SimulatedTermination out;
  std::vector<double> history;
  for (std::size_t e = 0; e < fitness_curve.size(); ++e) {
    history.push_back(fitness_curve[e]);
    out.epochs_trained = e + 1;
    const std::optional<double> p = engine.predict(history);
    if (p) out.prediction_history.push_back(*p);
    if (engine.converged(out.prediction_history)) {
      out.early_terminated = out.epochs_trained < fitness_curve.size();
      // Convergence on the very last epoch saves no training, so the
      // measured fitness — not the extrapolation — is what the NAS sees.
      out.reported_fitness = out.early_terminated
                                 ? out.prediction_history.back()
                                 : history.back();
      return out;
    }
  }
  out.reported_fitness = history.empty() ? 0.0 : history.back();
  return out;
}

}  // namespace a4nn::penguin
