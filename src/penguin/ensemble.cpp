#include <cmath>

#include "penguin/curve_fit.hpp"

namespace a4nn::penguin {

std::optional<EnsembleFit> ensemble_predict(
    const std::vector<FunctionPtr>& families, std::span<const double> xs,
    std::span<const double> ys, double x_pred) {
  EnsembleFit out;
  double weight_sum = 0.0;
  double weighted_prediction = 0.0;
  for (const auto& family : families) {
    if (!family) continue;
    const auto fit = fit_curve(*family, xs, ys);
    if (!fit) continue;
    const double prediction = family->eval(fit->params, x_pred);
    if (!std::isfinite(prediction)) continue;
    // Inverse-SSE weighting: families that explain the observed curve
    // better dominate the extrapolation.
    const double weight = 1.0 / (fit->sse + 1e-6);
    out.members.emplace_back(family->name(), prediction, weight);
    weighted_prediction += weight * prediction;
    weight_sum += weight;
  }
  if (out.members.empty() || weight_sum <= 0.0) return std::nullopt;
  out.prediction = weighted_prediction / weight_sum;
  // Normalize reported weights for interpretability.
  for (auto& [name, pred, weight] : out.members) weight /= weight_sum;
  return out;
}

}  // namespace a4nn::penguin
