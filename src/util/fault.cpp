#include "util/fault.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace a4nn::util {

util::Json FaultConfig::to_json() const {
  util::Json j = util::Json::object();
  j["enabled"] = enabled;
  j["transient_failure_prob"] = transient_failure_prob;
  j["permanent_failure_prob"] = permanent_failure_prob;
  j["job_crash_prob"] = job_crash_prob;
  j["straggler_prob"] = straggler_prob;
  j["straggler_slowdown"] = straggler_slowdown;
  j["max_retries"] = max_retries;
  j["backoff_base_seconds"] = backoff_base_seconds;
  j["backoff_multiplier"] = backoff_multiplier;
  j["backoff_cap_seconds"] = backoff_cap_seconds;
  j["backoff_jitter"] = backoff_jitter;
  j["partition_prob"] = partition_prob;
  j["worker_crash_prob"] = worker_crash_prob;
  j["slow_link_prob"] = slow_link_prob;
  j["slow_link_delay_ms"] = slow_link_delay_ms;
  j["torn_frame_prob"] = torn_frame_prob;
  j["stream_stall_prob"] = stream_stall_prob;
  j["stream_stall_ms"] = stream_stall_ms;
  j["stream_burst_prob"] = stream_burst_prob;
  j["stream_burst_frames"] = stream_burst_frames;
  j["stream_corrupt_prob"] = stream_corrupt_prob;
  j["stream_rate_spike_prob"] = stream_rate_spike_prob;
  j["stream_rate_spike_factor"] = stream_rate_spike_factor;
  j["stream_rate_spike_frames"] = stream_rate_spike_frames;
  j["stream_crash_prob"] = stream_crash_prob;
  j["stream_recovery_crash_prob"] = stream_recovery_crash_prob;
  j["seed"] = seed;
  return j;
}

namespace {

// SplitMix64 finalizer: the avalanche function that turns structured
// coordinates into independent uniform bits.
inline std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline std::uint64_t absorb(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2)));
}

constexpr std::uint64_t kTagPermanent = 0xDEAD;
constexpr std::uint64_t kTagTransient = 0xFA11;
constexpr std::uint64_t kTagCrash = 0xC4A5;
constexpr std::uint64_t kTagFraction = 0xF4AC;
constexpr std::uint64_t kTagStraggler = 0x510E;
constexpr std::uint64_t kTagJitter = 0x717E;
constexpr std::uint64_t kTagPartition = 0x9A87;
constexpr std::uint64_t kTagWorkerCrash = 0xA0CC;
constexpr std::uint64_t kTagSlowLink = 0x510C;
constexpr std::uint64_t kTagTornFrame = 0x70F4;
constexpr std::uint64_t kTagStreamStall = 0x57A1;
constexpr std::uint64_t kTagStreamBurst = 0xB0057;
constexpr std::uint64_t kTagStreamCorrupt = 0xC0FF;
constexpr std::uint64_t kTagStreamSpike = 0x5B1C;
constexpr std::uint64_t kTagStreamCrash = 0x5C4A;
constexpr std::uint64_t kTagRecoveryCrash = 0x4EC0;

}  // namespace

FaultInjector::FaultInjector(FaultConfig config) : config_(std::move(config)) {
  auto probability = [](double p, const char* name) {
    if (p < 0.0 || p > 1.0)
      throw std::invalid_argument(std::string("FaultInjector: ") + name +
                                  " must be in [0, 1]");
  };
  probability(config_.transient_failure_prob, "transient_failure_prob");
  probability(config_.permanent_failure_prob, "permanent_failure_prob");
  probability(config_.job_crash_prob, "job_crash_prob");
  probability(config_.straggler_prob, "straggler_prob");
  probability(config_.partition_prob, "partition_prob");
  probability(config_.worker_crash_prob, "worker_crash_prob");
  probability(config_.slow_link_prob, "slow_link_prob");
  probability(config_.torn_frame_prob, "torn_frame_prob");
  probability(config_.stream_stall_prob, "stream_stall_prob");
  probability(config_.stream_burst_prob, "stream_burst_prob");
  probability(config_.stream_corrupt_prob, "stream_corrupt_prob");
  probability(config_.stream_rate_spike_prob, "stream_rate_spike_prob");
  probability(config_.stream_crash_prob, "stream_crash_prob");
  probability(config_.stream_recovery_crash_prob, "stream_recovery_crash_prob");
  if (config_.stream_rate_spike_factor < 1.0)
    throw std::invalid_argument(
        "FaultInjector: stream_rate_spike_factor must be >= 1");
  if (config_.straggler_slowdown < 1.0)
    throw std::invalid_argument("FaultInjector: straggler_slowdown must be >= 1");
  if (config_.backoff_jitter < 0.0 || config_.backoff_jitter > 1.0)
    throw std::invalid_argument("FaultInjector: backoff_jitter must be in [0, 1]");
}

double FaultInjector::draw(std::uint64_t tag, std::uint64_t a, std::uint64_t b,
                          std::uint64_t c) const {
  std::uint64_t h = mix64(config_.seed ^ tag);
  h = absorb(h, a);
  h = absorb(h, b);
  h = absorb(h, c);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::device_fails_permanently(std::uint64_t generation,
                                             int device) const {
  if (!config_.enabled) return false;
  return draw(kTagPermanent, generation, static_cast<std::uint64_t>(device), 0) <
         config_.permanent_failure_prob;
}

bool FaultInjector::transient_fault(std::uint64_t generation, std::size_t job,
                                    std::size_t attempt) const {
  if (!config_.enabled) return false;
  return draw(kTagTransient, generation, job, attempt) <
         config_.transient_failure_prob;
}

bool FaultInjector::job_crash(std::uint64_t generation, std::size_t job,
                              std::size_t attempt) const {
  if (!config_.enabled) return false;
  return draw(kTagCrash, generation, job, attempt) < config_.job_crash_prob;
}

double FaultInjector::fail_fraction(std::uint64_t generation, std::size_t job,
                                    std::size_t attempt) const {
  // Never exactly 0 so a failed attempt always consumes some virtual time.
  return std::max(1e-6, draw(kTagFraction, generation, job, attempt));
}

double FaultInjector::straggler_multiplier(std::uint64_t generation,
                                           std::size_t job,
                                           std::size_t attempt) const {
  if (!config_.enabled) return 1.0;
  return draw(kTagStraggler, generation, job, attempt) < config_.straggler_prob
             ? config_.straggler_slowdown
             : 1.0;
}

double FaultInjector::backoff_seconds(std::size_t attempt) const {
  const double exponent = attempt > 0 ? static_cast<double>(attempt - 1) : 0.0;
  const double backoff = config_.backoff_base_seconds *
                         std::pow(config_.backoff_multiplier, exponent);
  return std::min(backoff, config_.backoff_cap_seconds);
}

double FaultInjector::jittered_backoff_seconds(std::uint64_t generation,
                                               std::size_t job,
                                               std::size_t attempt) const {
  const double base = backoff_seconds(attempt);
  if (config_.backoff_jitter <= 0.0) return base;
  // Uniform in [1 - jitter, 1 + jitter]; a pure hash of the coordinates so
  // the same retry gets the same jitter on every replay.
  const double u = draw(kTagJitter, generation, job, attempt);
  return base * (1.0 + config_.backoff_jitter * (2.0 * u - 1.0));
}

bool FaultInjector::network_partition(std::uint64_t epoch, std::size_t peer,
                                      std::size_t attempt) const {
  if (!config_.enabled) return false;
  return draw(kTagPartition, epoch, peer, attempt) < config_.partition_prob;
}

bool FaultInjector::worker_crash(std::uint64_t epoch, std::size_t peer,
                                 std::size_t attempt) const {
  if (!config_.enabled) return false;
  return draw(kTagWorkerCrash, epoch, peer, attempt) <
         config_.worker_crash_prob;
}

bool FaultInjector::slow_link(std::uint64_t epoch, std::size_t peer,
                              std::size_t attempt) const {
  if (!config_.enabled) return false;
  return draw(kTagSlowLink, epoch, peer, attempt) < config_.slow_link_prob;
}

bool FaultInjector::torn_frame(std::uint64_t epoch, std::size_t peer,
                               std::size_t attempt) const {
  if (!config_.enabled) return false;
  return draw(kTagTornFrame, epoch, peer, attempt) < config_.torn_frame_prob;
}

bool FaultInjector::stream_stall(std::uint64_t frame,
                                 std::size_t attempt) const {
  if (!config_.enabled) return false;
  return draw(kTagStreamStall, frame, attempt, 0) < config_.stream_stall_prob;
}

bool FaultInjector::stream_burst(std::uint64_t frame,
                                 std::size_t attempt) const {
  if (!config_.enabled) return false;
  return draw(kTagStreamBurst, frame, attempt, 0) < config_.stream_burst_prob;
}

bool FaultInjector::stream_corrupt_frame(std::uint64_t frame) const {
  // No attempt coordinate: in-flight corruption is a property of the frame
  // content, so the drift monitor's corrupt-frame exclusions replay
  // identically no matter how many restarts the run saw.
  if (!config_.enabled) return false;
  return draw(kTagStreamCorrupt, frame, 0, 0) < config_.stream_corrupt_prob;
}

bool FaultInjector::stream_rate_spike(std::uint64_t frame,
                                      std::size_t attempt) const {
  if (!config_.enabled) return false;
  return draw(kTagStreamSpike, frame, attempt, 0) <
         config_.stream_rate_spike_prob;
}

bool FaultInjector::stream_crash(std::uint64_t frame,
                                 std::size_t attempt) const {
  if (!config_.enabled) return false;
  return draw(kTagStreamCrash, frame, attempt, 0) < config_.stream_crash_prob;
}

bool FaultInjector::stream_recovery_crash(std::uint64_t action,
                                          std::size_t attempt) const {
  if (!config_.enabled) return false;
  return draw(kTagRecoveryCrash, action, attempt, 0) <
         config_.stream_recovery_crash_prob;
}

}  // namespace a4nn::util
