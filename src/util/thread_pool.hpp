// Fixed-size worker pool. The resource manager maps each simulated GPU to
// one pool worker, so model trainings genuinely run concurrently (the
// virtual clock decides *reported* wall time, the pool exercises the real
// concurrent code path).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace a4nn::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers. A pool of 0 workers spawns no threads
  /// and runs each task inline at submit() — callers can treat "no
  /// concurrency" as just another pool size.
  explicit ThreadPool(std::size_t num_threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; FIFO dispatch (matches Ray's FIFO dynamic scheduling
  /// that the paper's resource manager relies on).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    if (workers_.empty()) {
      (*task)();  // zero-worker pool: run inline (exception lands in fut)
      return fut;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Block until every queued and running task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace a4nn::util
