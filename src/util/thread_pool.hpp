// Fixed-size worker pool. The resource manager maps each simulated GPU to
// one pool worker, so model trainings genuinely run concurrently (the
// virtual clock decides *reported* wall time, the pool exercises the real
// concurrent code path). The serving engine runs its inference workers on
// a capacity-bounded pool: submit() then exerts backpressure instead of
// letting the queue grow without bound.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace a4nn::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers. A pool of 0 workers spawns no threads
  /// and runs each task inline at submit() — callers can treat "no
  /// concurrency" as just another pool size. `queue_capacity` bounds the
  /// number of queued (not yet running) tasks: 0 means unbounded; a
  /// nonzero bound makes submit() block until a slot frees (backpressure)
  /// and try_submit() refuse instead.
  explicit ThreadPool(std::size_t num_threads, std::size_t queue_capacity = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }
  std::size_t queue_capacity() const { return capacity_; }

  /// Queued (not yet running) tasks right now.
  std::size_t queued() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  /// Enqueue a task; FIFO dispatch (matches Ray's FIFO dynamic scheduling
  /// that the paper's resource manager relies on). On a capacity-bounded
  /// pool this blocks until the queue has room.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    if (workers_.empty()) {
      (*task)();  // zero-worker pool: run inline (exception lands in fut)
      return fut;
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (capacity_ > 0)
        space_cv_.wait(lock, [this] {
          return stopping_ || queue_.size() < capacity_;
        });
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Like submit(), but never blocks: returns nullopt when a
  /// capacity-bounded queue is full. The admission-control layer of the
  /// serving engine uses this to reject work instead of queueing it.
  template <typename F>
  auto try_submit(F&& f)
      -> std::optional<std::future<std::invoke_result_t<F>>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    if (workers_.empty()) {
      (*task)();
      return fut;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      if (capacity_ > 0 && queue_.size() >= capacity_) return std::nullopt;
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Block until every queued and running task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::condition_variable space_cv_;  // capacity slots freeing up
  std::size_t capacity_ = 0;          // 0 = unbounded
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace a4nn::util
