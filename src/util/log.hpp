// Leveled, thread-safe logging. The orchestrator and scheduler log from
// worker threads; a single mutex serializes lines so interleaved output
// stays readable. Verbosity is process-global and settable from the CLI of
// every example/bench via A4NN_LOG_LEVEL or set_level().
#pragma once

#include <sstream>
#include <string>

namespace a4nn::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();
/// Reads A4NN_LOG_LEVEL (debug|info|warn|error|off) if present.
void init_log_level_from_env();

/// Emit one line at `level` with a timestamp prefix. No-op if below the
/// current threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace a4nn::util
