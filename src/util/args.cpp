#include "util/args.hpp"

#include <charconv>
#include <sstream>

namespace a4nn::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_option(const std::string& name, std::string fallback,
                           std::string help) {
  if (specs_.count(name)) throw ArgError("duplicate option --" + name);
  Spec spec;
  spec.value = fallback;
  spec.fallback = std::move(fallback);
  spec.help = std::move(help);
  specs_[name] = std::move(spec);
  order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, std::string help) {
  if (specs_.count(name)) throw ArgError("duplicate option --" + name);
  Spec spec;
  spec.value = "false";
  spec.fallback = "false";
  spec.help = std::move(help);
  spec.is_flag = true;
  specs_[name] = std::move(spec);
  order_.push_back(name);
}

void ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    auto it = specs_.find(name);
    if (it == specs_.end()) throw ArgError("unknown option --" + name);
    Spec& spec = it->second;
    if (spec.is_flag) {
      if (has_inline) throw ArgError("flag --" + name + " takes no value");
      spec.value = "true";
    } else if (has_inline) {
      spec.value = std::move(inline_value);
    } else {
      if (i + 1 >= argc) throw ArgError("option --" + name + " needs a value");
      spec.value = argv[++i];
    }
    spec.set = true;
  }
}

std::string ArgParser::usage() const {
  std::ostringstream out;
  out << "usage: " << program_ << " [options]\n" << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Spec& spec = specs_.at(name);
    out << "  --" << name;
    if (!spec.is_flag) out << " <value>";
    out << "\n      " << spec.help;
    if (!spec.is_flag) out << " (default: " << spec.fallback << ")";
    out << "\n";
  }
  return out.str();
}

const std::string& ArgParser::get(const std::string& name) const {
  auto it = specs_.find(name);
  if (it == specs_.end()) throw ArgError("undeclared option --" + name);
  return it->second.value;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string& s = get(name);
  double d = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), d);
  if (ec != std::errc() || ptr != s.data() + s.size())
    throw ArgError("option --" + name + ": '" + s + "' is not a number");
  return d;
}

std::size_t ArgParser::get_size(const std::string& name) const {
  const double d = get_double(name);
  if (d < 0.0) throw ArgError("option --" + name + " must be >= 0");
  return static_cast<std::size_t>(d);
}

bool ArgParser::get_flag(const std::string& name) const {
  return get(name) == "true";
}

}  // namespace a4nn::util
