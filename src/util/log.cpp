#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace a4nn::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void init_log_level_from_env() {
  const char* env = std::getenv("A4NN_LOG_LEVEL");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) set_log_level(LogLevel::kDebug);
  else if (std::strcmp(env, "info") == 0) set_log_level(LogLevel::kInfo);
  else if (std::strcmp(env, "warn") == 0) set_log_level(LogLevel::kWarn);
  else if (std::strcmp(env, "error") == 0) set_log_level(LogLevel::kError);
  else if (std::strcmp(env, "off") == 0) set_log_level(LogLevel::kOff);
}

void log_line(LogLevel level, const std::string& message) {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const auto secs = duration_cast<seconds>(now.time_since_epoch()).count();
  const auto ms =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%lld.%03lld %s] %s\n",
               static_cast<long long>(secs), static_cast<long long>(ms),
               level_name(level), message.c_str());
}

}  // namespace a4nn::util
