// Integrity frame for data-commons artifacts: a one-line header carrying a
// magic, format version, payload length, and CRC-32, followed by the raw
// payload bytes. A torn write, mid-payload truncation, or single-bit flip
// makes the header checks fail, so readers can quarantine the file instead
// of silently accepting corrupted state.
//
// On-disk layout (version 1):
//   A4NNF1 <payload length, decimal> <crc32 of payload, 8 hex digits>\n
//   <payload bytes>
//
// Readers are versioned: content that does not start with the magic is a
// legacy unframed artifact (pre-framing commons trees) and is accepted
// verbatim; it gets re-framed automatically the first time it is rewritten,
// because writers always frame. An unknown frame version is an error, not
// legacy — it means the tree was written by a newer build.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace a4nn::util {

/// Thrown when framed content fails its header, length, or CRC check.
class FrameError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::string_view kFrameMagic = "A4NNF";
inline constexpr int kFrameVersion = 1;

/// Wrap `payload` in a version-1 integrity frame.
std::string frame(std::string_view payload);

/// Whether `content` starts with the frame magic (any version).
bool is_framed(std::string_view content);

/// Strict unframe: `content` must carry a valid current-version frame whose
/// length and CRC match exactly; throws FrameError otherwise.
std::string unframe(std::string_view content);

struct UnframeResult {
  std::string payload;
  bool was_framed = false;
};

/// Versioned read: framed content is verified (FrameError on corruption)
/// and unwrapped; unframed content is treated as a legacy artifact and
/// returned verbatim.
UnframeResult unframe_or_legacy(std::string_view content);

}  // namespace a4nn::util
