// Integrity frame for data-commons artifacts: a one-line header carrying a
// magic, format version, payload length, and CRC-32, followed by the raw
// payload bytes. A torn write, mid-payload truncation, or single-bit flip
// makes the header checks fail, so readers can quarantine the file instead
// of silently accepting corrupted state.
//
// On-disk layout (version 1):
//   A4NNF1 <payload length, decimal> <crc32 of payload, 8 hex digits>\n
//   <payload bytes>
//
// Readers are versioned: content that does not start with the magic is a
// legacy unframed artifact (pre-framing commons trees) and is accepted
// verbatim; it gets re-framed automatically the first time it is rewritten,
// because writers always frame. An unknown frame version is an error, not
// legacy — it means the tree was written by a newer build.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace a4nn::util {

/// Thrown when framed content fails its header, length, or CRC check.
class FrameError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::string_view kFrameMagic = "A4NNF";
inline constexpr int kFrameVersion = 1;

/// Wrap `payload` in a version-1 integrity frame.
std::string frame(std::string_view payload);

/// Whether `content` starts with the frame magic (any version).
bool is_framed(std::string_view content);

/// Strict unframe: `content` must carry a valid current-version frame whose
/// length and CRC match exactly; throws FrameError otherwise.
std::string unframe(std::string_view content);

struct UnframeResult {
  std::string payload;
  bool was_framed = false;
};

/// Versioned read: framed content is verified (FrameError on corruption)
/// and unwrapped; unframed content is treated as a legacy artifact and
/// returned verbatim.
UnframeResult unframe_or_legacy(std::string_view content);

// --- Wire framing (cluster TCP protocol) -----------------------------------
//
// A wire frame is `[u32 length, little-endian][u8 type][payload]` where the
// payload is itself an A4NNF1 integrity frame (header + CRC-32) wrapping the
// message text. The length covers the payload only, not the type byte. The
// inner frame makes every message self-validating, so a receiver can detect
// torn writes, bit flips, and truncation without trusting the outer length
// field — and can *resynchronize* after corruption by scanning for the next
// payload that starts with the A4NNF magic and passes its CRC.

/// One decoded wire frame: the type byte plus the verified (unframed)
/// message text.
struct WireFrame {
  std::uint8_t type = 0;
  std::string payload;
};

/// Frames a message for the wire: `[u32 len][u8 type][A4NNF1(payload)]`.
std::string encode_wire_frame(std::uint8_t type, std::string_view payload);

/// Incremental wire-frame decoder. Feed it bytes in whatever chunks the
/// socket delivers; next() yields complete, CRC-verified frames as they
/// become available. A frame that fails validation (bad length field,
/// payload CRC mismatch, truncated inner frame) is counted and the decoder
/// enters resync mode: it scans forward for the next byte position that
/// parses as a complete valid frame, discarding garbage in between. The
/// stream therefore survives torn frames and mid-stream corruption at the
/// cost of the corrupted message(s) only.
class StreamDecoder {
 public:
  /// `max_frame_bytes` bounds the payload length a header may claim; a
  /// larger claim is treated as corruption (protects against a flipped
  /// length bit demanding gigabytes of buffer).
  explicit StreamDecoder(std::size_t max_frame_bytes = 64u << 20);

  /// Append raw bytes from the transport.
  void feed(const char* data, std::size_t n);
  void feed(std::string_view data) { feed(data.data(), data.size()); }

  /// Decode the next complete frame into `out`. Returns false when the
  /// buffered bytes do not (yet) contain one; feed more and retry.
  bool next(WireFrame& out);

  /// Drop all buffered bytes and resync state (fresh connection).
  void reset();

  /// Lifetime accounting (never reset by reset()).
  std::size_t frames_decoded() const { return frames_decoded_; }
  std::size_t corrupt_frames() const { return corrupt_frames_; }
  std::size_t resyncs() const { return resyncs_; }
  std::size_t bytes_discarded() const { return bytes_discarded_; }

 private:
  /// Try to parse a complete frame at `offset` into `out`.
  enum class Parse { kOk, kNeedMore, kBad };
  Parse try_parse(std::size_t offset, WireFrame& out) const;
  void drop_front(std::size_t n);

  std::size_t max_frame_bytes_;
  std::string buffer_;
  bool resyncing_ = false;
  std::size_t frames_decoded_ = 0;
  std::size_t corrupt_frames_ = 0;
  std::size_t resyncs_ = 0;
  std::size_t bytes_discarded_ = 0;
};

}  // namespace a4nn::util
