#include "util/thread_pool.hpp"

#include <stdexcept>

namespace a4nn::util {

ThreadPool::ThreadPool(std::size_t num_threads, std::size_t queue_capacity)
    : capacity_(queue_capacity) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  space_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      if (capacity_ > 0) space_cv_.notify_one();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace a4nn::util
