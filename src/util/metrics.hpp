// Typed metrics registry: counters, gauges, and fixed-bin histograms that
// the workflow layers (training loop, prediction engine, scheduler,
// lineage journal, GEMM driver) increment at their accounting points.
//
// Design constraints, in order:
//   1. Determinism: reading or writing a metric never perturbs RNG streams,
//      float summation order, or scheduling — a run with metrics attached
//      is bit-identical to one without.
//   2. Exactness: a counter incremented at the same code point, in the same
//      order, as an ad-hoc accumulator holds the bit-identical value, so
//      RunSummary totals can become derived views of the registry instead
//      of hand-threaded sums.
//   3. Hot-path safety: increments are lock-free (one relaxed atomic RMW);
//      only first-time registration of a name takes a mutex.
//
// Instruments are registered lazily by name and live as long as their
// registry; references returned by counter()/gauge()/histogram() are
// stable. `snapshot()` serializes everything into one util::Json document
// (the RunSummary `metrics` block and the trace file's `metrics` key).
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace a4nn::util::metrics {

/// Monotonic accumulator. Holds a double so one type serves both event
/// counts (exact up to 2^53) and second/byte totals; single-threaded call
/// sites accumulate in call order and therefore bit-match an ad-hoc sum.
class Counter {
 public:
  void add(double v = 1.0) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-write-wins instantaneous value, with a monotonic-max variant for
/// high-water marks (scratch-arena footprints).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void update_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-width bins over [lo, hi]; out-of-range observations clamp into the
/// edge bins (same convention as util::histogram).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void observe(double v);
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const {
    return counts_[bin].load(std::memory_order_relaxed);
  }
  std::uint64_t total() const;

  /// q-quantile (q in [0,1]) estimated from the bin counts with linear
  /// interpolation inside the containing bin — the usual
  /// Prometheus-histogram estimator, so p99 error is bounded by one bin
  /// width. Observations sit on the clamped range [lo, hi]; an empty
  /// histogram returns lo. The serving layer reads p50/p95/p99 latency
  /// off this.
  double quantile(double q) const;

  /// Everything observed since the previous window_snapshot() (or since
  /// construction/reset), with the quantile estimate restricted to that
  /// window. Bins are atomically exchanged to zero, so consecutive
  /// snapshots partition the observation stream: an observation lands in
  /// exactly one window. The drift monitor reads per-window tail latency
  /// and label distributions off this without a second histogram.
  struct WindowSnapshot {
    std::uint64_t total = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    std::vector<std::uint64_t> counts;  ///< per-bin counts in the window
  };
  WindowSnapshot window_snapshot();

  void reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::atomic<std::uint64_t>> counts_;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create by name. References stay valid for the registry's
  /// lifetime. histogram() with a name that already exists returns the
  /// existing instrument regardless of the requested shape.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t bins);

  /// One JSON document over every instrument:
  ///   {"counters": {name: value}, "gauges": {name: value},
  ///    "histograms": {name: {"lo", "hi", "counts": [...]}}}
  Json snapshot() const;

  /// Reset every registered instrument to zero (names stay registered).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-wide registry for call sites with no instance plumbing (the
/// GEMM driver, scratch arenas). Workflow runs use their own Registry so
/// per-run totals stay exact across multiple runs in one process.
Registry& global();

}  // namespace a4nn::util::metrics
