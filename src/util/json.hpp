// Minimal JSON value model, parser, and pretty-printer.
//
// The lineage tracker serializes record trails (architectures, fitness and
// prediction histories, engine parameters, timings) as JSON documents in the
// data commons, and the analyzer reads them back. This is a small,
// dependency-free implementation that supports the full JSON grammar with
// IEEE-754 round-trippable number formatting.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace a4nn::util {

class Json;

using JsonArray = std::vector<Json>;
// std::map keeps keys ordered so serialized commons files are diffable.
using JsonObject = std::map<std::string, Json>;

/// Thrown on malformed documents and type-mismatched accessors.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A JSON value: null, bool, number (double), string, array, or object.
class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::uint64_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  template <typename T>
  Json(const std::vector<T>& v) {
    JsonArray a;
    a.reserve(v.size());
    for (const auto& x : v) a.emplace_back(x);
    value_ = std::move(a);
  }

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  JsonArray& as_array();
  const JsonObject& as_object() const;
  JsonObject& as_object();

  /// Object access; creates the key on the mutable overload.
  Json& operator[](const std::string& key);
  /// Const object access; throws JsonError if the key is absent.
  const Json& at(const std::string& key) const;
  /// Array element access with bounds checking.
  const Json& at(std::size_t index) const;

  bool contains(const std::string& key) const;
  std::size_t size() const;

  /// Convenience typed getters with defaults for optional fields.
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key, std::string fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;

  void push_back(Json v);

  /// Serialize. indent < 0 emits compact one-line JSON; indent >= 0 pretty
  /// prints with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Parse a complete document; trailing garbage is an error.
  static Json parse(const std::string& text);

  /// Extract a vector of doubles from an array of numbers.
  std::vector<double> as_double_vector() const;

  friend bool operator==(const Json& a, const Json& b) {
    return a.value_ == b.value_;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>
      value_;

  void dump_impl(std::string& out, int indent, int depth) const;
};

}  // namespace a4nn::util
