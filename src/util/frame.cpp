#include "util/frame.hpp"

#include <charconv>
#include <cstdio>

#include "util/checksum.hpp"

namespace a4nn::util {

std::string frame(std::string_view payload) {
  char header[48];
  const int n =
      std::snprintf(header, sizeof(header), "%.*s%d %zu %08x\n",
                    static_cast<int>(kFrameMagic.size()), kFrameMagic.data(),
                    kFrameVersion, payload.size(), crc32(payload));
  std::string out;
  out.reserve(static_cast<std::size_t>(n) + payload.size());
  out.append(header, static_cast<std::size_t>(n));
  out.append(payload);
  return out;
}

bool is_framed(std::string_view content) {
  return content.substr(0, kFrameMagic.size()) == kFrameMagic;
}

namespace {

/// Parse the header line; returns the payload view after validating length
/// and CRC. Every failure mode gets its own message so fsck reports say
/// exactly how the file is broken.
std::string_view parse_frame(std::string_view content) {
  if (!is_framed(content)) throw FrameError("frame: missing magic");
  std::string_view rest = content.substr(kFrameMagic.size());

  int version = 0;
  auto [vp, vec] = std::from_chars(rest.data(), rest.data() + rest.size(), version);
  if (vec != std::errc{} || vp == rest.data() || vp == rest.data() + rest.size() ||
      *vp != ' ')
    throw FrameError("frame: malformed version field");
  if (version != kFrameVersion)
    throw FrameError("frame: unsupported version " + std::to_string(version));
  rest.remove_prefix(static_cast<std::size_t>(vp - rest.data()) + 1);

  std::size_t length = 0;
  auto [lp, lec] = std::from_chars(rest.data(), rest.data() + rest.size(), length);
  if (lec != std::errc{} || lp == rest.data() || lp == rest.data() + rest.size() ||
      *lp != ' ')
    throw FrameError("frame: malformed length field");
  rest.remove_prefix(static_cast<std::size_t>(lp - rest.data()) + 1);

  std::uint32_t crc = 0;
  auto [cp, cec] =
      std::from_chars(rest.data(), rest.data() + rest.size(), crc, 16);
  if (cec != std::errc{} || cp == rest.data() || cp == rest.data() + rest.size() ||
      *cp != '\n')
    throw FrameError("frame: malformed crc field");
  rest.remove_prefix(static_cast<std::size_t>(cp - rest.data()) + 1);

  if (rest.size() < length)
    throw FrameError("frame: truncated payload (" + std::to_string(rest.size()) +
                     " of " + std::to_string(length) + " bytes)");
  if (rest.size() > length)
    throw FrameError("frame: " + std::to_string(rest.size() - length) +
                     " trailing byte(s) after payload");
  if (crc32(rest) != crc) throw FrameError("frame: payload crc mismatch");
  return rest;
}

}  // namespace

std::string unframe(std::string_view content) {
  return std::string(parse_frame(content));
}

UnframeResult unframe_or_legacy(std::string_view content) {
  if (!is_framed(content)) return {std::string(content), false};
  return {std::string(parse_frame(content)), true};
}

// --- Wire framing ----------------------------------------------------------

namespace {

/// Bytes before the payload: u32 length + u8 type.
constexpr std::size_t kWireHeaderBytes = 5;

inline std::uint32_t load_u32le(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

}  // namespace

std::string encode_wire_frame(std::uint8_t type, std::string_view payload) {
  const std::string framed = frame(payload);
  const std::uint32_t len = static_cast<std::uint32_t>(framed.size());
  std::string out;
  out.reserve(kWireHeaderBytes + framed.size());
  out.push_back(static_cast<char>(len & 0xFF));
  out.push_back(static_cast<char>((len >> 8) & 0xFF));
  out.push_back(static_cast<char>((len >> 16) & 0xFF));
  out.push_back(static_cast<char>((len >> 24) & 0xFF));
  out.push_back(static_cast<char>(type));
  out.append(framed);
  return out;
}

StreamDecoder::StreamDecoder(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void StreamDecoder::feed(const char* data, std::size_t n) {
  buffer_.append(data, n);
}

void StreamDecoder::reset() {
  buffer_.clear();
  resyncing_ = false;
}

void StreamDecoder::drop_front(std::size_t n) {
  buffer_.erase(0, n);
}

StreamDecoder::Parse StreamDecoder::try_parse(std::size_t offset,
                                              WireFrame& out) const {
  if (buffer_.size() - offset < kWireHeaderBytes) return Parse::kNeedMore;
  const std::uint32_t len = load_u32le(buffer_.data() + offset);
  if (len > max_frame_bytes_) return Parse::kBad;
  if (buffer_.size() - offset - kWireHeaderBytes < len) return Parse::kNeedMore;
  const std::string_view framed(buffer_.data() + offset + kWireHeaderBytes,
                                len);
  try {
    out.payload = unframe(framed);
  } catch (const FrameError&) {
    return Parse::kBad;
  }
  out.type = static_cast<std::uint8_t>(
      static_cast<unsigned char>(buffer_[offset + kWireHeaderBytes - 1]));
  return Parse::kOk;
}

bool StreamDecoder::next(WireFrame& out) {
  while (true) {
    if (!resyncing_) {
      switch (try_parse(0, out)) {
        case Parse::kOk: {
          const std::uint32_t len = load_u32le(buffer_.data());
          drop_front(kWireHeaderBytes + len);
          ++frames_decoded_;
          return true;
        }
        case Parse::kNeedMore:
          return false;
        case Parse::kBad:
          // Corruption somewhere in (at least) the frame at offset 0: the
          // length field cannot be trusted, so scan forward for the next
          // position that parses as a complete valid frame.
          ++corrupt_frames_;
          ++resyncs_;
          resyncing_ = true;
          ++bytes_discarded_;
          drop_front(1);
          break;
      }
    }

    // Resync: candidate frame starts are positions whose payload begins
    // with the inner-frame magic kWireHeaderBytes later. Scanning for the
    // magic (instead of brute-forcing every offset) keeps this linear.
    while (resyncing_) {
      const std::size_t magic_pos = buffer_.find(
          kFrameMagic.data(), kWireHeaderBytes, kFrameMagic.size());
      if (magic_pos == std::string::npos) {
        // No candidate in the buffer. Keep only the bytes that could still
        // be the prefix of a future candidate (header + partial magic).
        const std::size_t keep =
            std::min(buffer_.size(), kWireHeaderBytes + kFrameMagic.size() - 1);
        bytes_discarded_ += buffer_.size() - keep;
        drop_front(buffer_.size() - keep);
        return false;
      }
      const std::size_t candidate = magic_pos - kWireHeaderBytes;
      bytes_discarded_ += candidate;
      drop_front(candidate);
      switch (try_parse(0, out)) {
        case Parse::kOk: {
          const std::uint32_t len = load_u32le(buffer_.data());
          drop_front(kWireHeaderBytes + len);
          ++frames_decoded_;
          resyncing_ = false;
          return true;
        }
        case Parse::kNeedMore:
          return false;
        case Parse::kBad:
          // False candidate (magic bytes inside garbage): skip past the
          // magic occurrence and keep scanning.
          bytes_discarded_ += 1;
          drop_front(1);
          break;
      }
    }
  }
}

}  // namespace a4nn::util
