#include "util/frame.hpp"

#include <charconv>
#include <cstdio>

#include "util/checksum.hpp"

namespace a4nn::util {

std::string frame(std::string_view payload) {
  char header[48];
  const int n =
      std::snprintf(header, sizeof(header), "%.*s%d %zu %08x\n",
                    static_cast<int>(kFrameMagic.size()), kFrameMagic.data(),
                    kFrameVersion, payload.size(), crc32(payload));
  std::string out;
  out.reserve(static_cast<std::size_t>(n) + payload.size());
  out.append(header, static_cast<std::size_t>(n));
  out.append(payload);
  return out;
}

bool is_framed(std::string_view content) {
  return content.substr(0, kFrameMagic.size()) == kFrameMagic;
}

namespace {

/// Parse the header line; returns the payload view after validating length
/// and CRC. Every failure mode gets its own message so fsck reports say
/// exactly how the file is broken.
std::string_view parse_frame(std::string_view content) {
  if (!is_framed(content)) throw FrameError("frame: missing magic");
  std::string_view rest = content.substr(kFrameMagic.size());

  int version = 0;
  auto [vp, vec] = std::from_chars(rest.data(), rest.data() + rest.size(), version);
  if (vec != std::errc{} || vp == rest.data() || vp == rest.data() + rest.size() ||
      *vp != ' ')
    throw FrameError("frame: malformed version field");
  if (version != kFrameVersion)
    throw FrameError("frame: unsupported version " + std::to_string(version));
  rest.remove_prefix(static_cast<std::size_t>(vp - rest.data()) + 1);

  std::size_t length = 0;
  auto [lp, lec] = std::from_chars(rest.data(), rest.data() + rest.size(), length);
  if (lec != std::errc{} || lp == rest.data() || lp == rest.data() + rest.size() ||
      *lp != ' ')
    throw FrameError("frame: malformed length field");
  rest.remove_prefix(static_cast<std::size_t>(lp - rest.data()) + 1);

  std::uint32_t crc = 0;
  auto [cp, cec] =
      std::from_chars(rest.data(), rest.data() + rest.size(), crc, 16);
  if (cec != std::errc{} || cp == rest.data() || cp == rest.data() + rest.size() ||
      *cp != '\n')
    throw FrameError("frame: malformed crc field");
  rest.remove_prefix(static_cast<std::size_t>(cp - rest.data()) + 1);

  if (rest.size() < length)
    throw FrameError("frame: truncated payload (" + std::to_string(rest.size()) +
                     " of " + std::to_string(length) + " bytes)");
  if (rest.size() > length)
    throw FrameError("frame: " + std::to_string(rest.size() - length) +
                     " trailing byte(s) after payload");
  if (crc32(rest) != crc) throw FrameError("frame: payload crc mismatch");
  return rest;
}

}  // namespace

std::string unframe(std::string_view content) {
  return std::string(parse_frame(content));
}

UnframeResult unframe_or_legacy(std::string_view content) {
  if (!is_framed(content)) return {std::string(content), false};
  return {std::string(parse_frame(content)), true};
}

}  // namespace a4nn::util
