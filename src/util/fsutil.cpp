#include "util/fsutil.hpp"

#include <algorithm>
#include <atomic>
#include <unistd.h>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace a4nn::util {

namespace fs = std::filesystem;

void ensure_dir(const fs::path& dir) { fs::create_directories(dir); }

void write_file(const fs::path& path, const std::string& content) {
  if (path.has_parent_path()) ensure_dir(path.parent_path());
  // The temp name is unique per process AND per write so concurrent
  // writers to the same path never clobber each other's staging file; the
  // atomic rename then makes last-writer-wins well defined.
  static std::atomic<std::uint64_t> write_counter{0};
  const fs::path tmp = path.string() + ".tmp." + std::to_string(::getpid()) +
                       "." + std::to_string(write_counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("write_file: cannot open " + tmp.string());
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      throw std::runtime_error("write_file: write failed " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code rm;
    fs::remove(tmp, rm);
    throw std::runtime_error("write_file: rename to " + path.string() +
                             " failed: " + ec.message());
  }
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_file: cannot open " + path.string());
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

std::vector<fs::path> list_files(const fs::path& dir,
                                 const std::string& extension) {
  std::vector<fs::path> out;
  if (!fs::exists(dir)) return out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    if (!extension.empty() && entry.path().extension() != extension) continue;
    out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

fs::path make_temp_dir(const std::string& prefix) {
  static std::atomic<std::uint64_t> counter{0};
  const fs::path base = fs::temp_directory_path();
  for (;;) {
    fs::path candidate =
        base / (prefix + "-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter.fetch_add(1)));
    std::error_code ec;
    if (fs::create_directories(candidate, ec) && !ec) return candidate;
  }
}

}  // namespace a4nn::util
