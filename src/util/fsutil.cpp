#include "util/fsutil.hpp"

#include <cerrno>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace a4nn::util {

namespace fs = std::filesystem;

void ensure_dir(const fs::path& dir) { fs::create_directories(dir); }

namespace {

std::uint64_t crash_after_from_env() {
  const char* value = std::getenv("A4NN_CRASH_AFTER_WRITES");
  if (!value) return 0;
  std::uint64_t k = 0;
  std::from_chars(value, value + std::strlen(value), k);
  return k;
}

std::atomic<std::uint64_t> g_write_ops{0};
std::atomic<std::uint64_t> g_crash_after_writes{crash_after_from_env()};

// All raw I/O below retries on EINTR: the graceful-shutdown handlers
// (util/shutdown) are installed without SA_RESTART so blocking loops can
// observe the stop flag, which means any read/write/open/fsync here can
// return early when a signal lands. Without the retry, a short write of a
// framed artifact would later be reported by the CRC layer as corruption —
// a signal must never be able to manufacture a torn file.

int open_retry(const char* path, int flags, mode_t mode = 0) {
  for (;;) {
    const int fd = ::open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

/// Write all `size` bytes, resuming partial and EINTR-interrupted writes.
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// fsync/fdatasync an open path (O_RDONLY is enough on Linux, and is the
/// only way to sync a directory). Sync failures are real data-loss risks,
/// so they throw instead of being swallowed.
void sync_path(const fs::path& path, bool directory) {
  const int fd =
      open_retry(path.c_str(), O_RDONLY | (directory ? O_DIRECTORY : 0));
  if (fd < 0)
    throw std::runtime_error("write_file: cannot open for sync: " +
                             path.string());
  int rc;
  do {
    rc = directory ? ::fsync(fd) : ::fdatasync(fd);
  } while (rc != 0 && errno == EINTR);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0)
    throw std::runtime_error("write_file: sync failed for " + path.string() +
                             ": " + std::strerror(saved_errno));
}

}  // namespace

void set_crash_after_writes(std::uint64_t k) {
  // Relative to the boundaries already crossed: a test (or forked child
  // inheriting the parent's counter) arms "k more writes from now", which
  // matches the env var's meaning at process start when the counter is 0.
  g_crash_after_writes.store(k == 0 ? 0 : g_write_ops.load() + k);
}

std::uint64_t write_op_count() { return g_write_ops.load(); }

void write_file(const fs::path& path, const std::string& content,
                Durability durability) {
  if (path.has_parent_path()) ensure_dir(path.parent_path());
  // The temp name is unique per process AND per write so concurrent
  // writers to the same path never clobber each other's staging file; the
  // atomic rename then makes last-writer-wins well defined.
  static std::atomic<std::uint64_t> write_counter{0};
  const fs::path tmp = path.string() + ".tmp." + std::to_string(::getpid()) +
                       "." + std::to_string(write_counter.fetch_add(1));
  const std::uint64_t boundary = g_write_ops.fetch_add(1) + 1;
  {
    const int fd =
        open_retry(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
      throw std::runtime_error("write_file: cannot open " + tmp.string());
    const bool ok = write_all(fd, content.data(), content.size());
    ::close(fd);
    if (!ok) {
      std::error_code ec;
      fs::remove(tmp, ec);
      throw std::runtime_error("write_file: write failed " + tmp.string());
    }
  }
  if (durability == Durability::kFsync) sync_path(tmp, /*directory=*/false);

  // Crash-point fuzzing: die with the write staged but not committed — the
  // state a real crash leaves behind. >= (not ==) so that any write racing
  // past the armed boundary dies too; the process is already "dead".
  const std::uint64_t crash_k = g_crash_after_writes.load();
  if (crash_k > 0 && boundary >= crash_k) ::_exit(1);

  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code rm;
    fs::remove(tmp, rm);
    throw std::runtime_error("write_file: rename to " + path.string() +
                             " failed: " + ec.message());
  }
  if (durability == Durability::kFsync && path.has_parent_path())
    sync_path(path.parent_path(), /*directory=*/true);
}

std::string read_file(const fs::path& path) {
  // Stat first: for regular files the byte count is the contract the read
  // must meet — a short read (special files, concurrent truncation) would
  // otherwise be returned as silently-valid shorter content.
  std::error_code stat_ec;
  const bool regular = fs::is_regular_file(path, stat_ec);
  std::uintmax_t expected = 0;
  if (regular) expected = fs::file_size(path, stat_ec);

  const int fd = open_retry(path.c_str(), O_RDONLY);
  if (fd < 0)
    throw std::runtime_error("read_file: cannot open " + path.string());
  std::string content;
  if (regular && !stat_ec) content.reserve(static_cast<std::size_t>(expected));
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved_errno = errno;
      ::close(fd);
      throw std::runtime_error("read_file: read failed for " + path.string() +
                               ": " + std::strerror(saved_errno));
    }
    if (n == 0) break;
    content.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  if (regular && !stat_ec && content.size() != expected)
    throw std::runtime_error(
        "read_file: size mismatch for " + path.string() + ": read " +
        std::to_string(content.size()) + " of " + std::to_string(expected) +
        " byte(s)");
  return content;
}

std::vector<fs::path> list_files(const fs::path& dir,
                                 const std::string& extension) {
  std::vector<fs::path> out;
  if (!fs::exists(dir)) return out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    if (!extension.empty() && entry.path().extension() != extension) continue;
    out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

fs::path make_temp_dir(const std::string& prefix) {
  static std::atomic<std::uint64_t> counter{0};
  const fs::path base = fs::temp_directory_path();
  for (;;) {
    fs::path candidate =
        base / (prefix + "-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter.fetch_add(1)));
    std::error_code ec;
    if (fs::create_directories(candidate, ec) && !ec) return candidate;
  }
}

}  // namespace a4nn::util
