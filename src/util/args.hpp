// Tiny declarative command-line parser for the driver binaries: the paper
// configures the NAS "through command-line arguments to the driver script"
// (§2.6.1), so the C++ driver gets the same interface.
//
//   ArgParser args("a4nn_run", "Run the A4NN workflow");
//   args.add_flag("verbose", "enable info logging");
//   args.add_option("population", "10", "size of starting population");
//   args.parse(argc, argv);           // throws ArgError on bad input
//   std::size_t pop = args.get_size("population");
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace a4nn::util {

class ArgError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// --name <value>; `fallback` doubles as the displayed default.
  void add_option(const std::string& name, std::string fallback,
                  std::string help);
  /// --name (boolean, default false).
  void add_flag(const std::string& name, std::string help);

  /// Parse argv; supports --name value, --name=value, and --help (which
  /// sets help_requested()). Unknown options and missing values throw.
  void parse(int argc, const char* const* argv);

  bool help_requested() const { return help_requested_; }
  std::string usage() const;

  const std::string& get(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::size_t get_size(const std::string& name) const;
  bool get_flag(const std::string& name) const;
  /// Positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  struct Spec {
    std::string value;
    std::string fallback;
    std::string help;
    bool is_flag = false;
    bool set = false;
  };
  std::string program_, description_;
  std::map<std::string, Spec> specs_;
  std::vector<std::string> order_;  // declaration order for usage()
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace a4nn::util
