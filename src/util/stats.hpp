// Descriptive statistics and small numerical helpers shared by the
// prediction analyzer, the analytics module, and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace a4nn::util {

double mean(std::span<const double> xs);
/// Population variance (divide by n); matches the paper's "variance of
/// prediction to tolerate in convergence" threshold semantics.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
double median(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);
/// Pearson correlation coefficient; returns 0 for degenerate inputs.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Ordinary least squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the edge buckets.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;

  std::size_t total() const;
  double bin_center(std::size_t i) const;
  /// Render as an ASCII bar chart (used by the figure benches).
  std::string render(int max_width = 50) const;
};
Histogram histogram(std::span<const double> xs, double lo, double hi,
                    std::size_t bins);

}  // namespace a4nn::util
