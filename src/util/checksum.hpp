// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) with an incremental
// API. Every artifact the lineage tracker commits is checksummed twice: the
// integrity frame around the payload carries one CRC, and the data-commons
// manifest journal records another over the file bytes as stored, so both
// torn writes and post-commit bit rot are detectable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace a4nn::util {

/// Streaming CRC-32. Feed chunks in any split; value() can be read at any
/// point without disturbing the stream.
class Crc32 {
 public:
  Crc32& update(const void* data, std::size_t size);
  Crc32& update(std::string_view data) { return update(data.data(), data.size()); }

  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }
  void reset() { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a buffer.
std::uint32_t crc32(std::string_view data);

}  // namespace a4nn::util
