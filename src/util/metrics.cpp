#include "util/metrics.hpp"

#include <cmath>

namespace a4nn::util::metrics {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins) {
  if (!(hi_ > lo_)) hi_ = lo_ + 1.0;
}

void Histogram::observe(double v) {
  if (std::isnan(v)) return;
  const double span = hi_ - lo_;
  double pos = (v - lo_) / span * static_cast<double>(counts_.size());
  std::size_t bin;
  if (pos <= 0.0) {
    bin = 0;
  } else if (pos >= static_cast<double>(counts_.size())) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>(pos);
  }
  counts_[bin].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::total() const {
  std::uint64_t n = 0;
  for (const auto& c : counts_) n += c.load(std::memory_order_relaxed);
  return n;
}

namespace {

/// Shared quantile estimator over a materialized count vector (the live
/// quantile() and window_snapshot() both defer here so their estimates
/// agree bin for bin).
double quantile_of(const std::vector<std::uint64_t>& counts, double lo,
                   double hi, double q) {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t n = 0;
  for (std::uint64_t c : counts) n += c;
  if (n == 0) return lo;
  // Target rank in (0, n]; walk bins until the cumulative count covers it,
  // then interpolate within the covering bin.
  const double rank = q * static_cast<double>(n);
  const double bin_width = (hi - lo) / static_cast<double>(counts.size());
  double cum = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double c = static_cast<double>(counts[b]);
    if (c == 0.0) continue;
    if (cum + c >= rank) {
      const double frac = (rank - cum) / c;
      return lo + (static_cast<double>(b) + frac) * bin_width;
    }
    cum += c;
  }
  return hi;
}

}  // namespace

double Histogram::quantile(double q) const {
  std::vector<std::uint64_t> counts(counts_.size());
  for (std::size_t b = 0; b < counts_.size(); ++b)
    counts[b] = counts_[b].load(std::memory_order_relaxed);
  return quantile_of(counts, lo_, hi_, q);
}

Histogram::WindowSnapshot Histogram::window_snapshot() {
  WindowSnapshot w;
  w.counts.resize(counts_.size());
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    // exchange, not load+reset: an observation racing with the snapshot is
    // claimed by exactly one window, never dropped or double-counted.
    w.counts[b] = counts_[b].exchange(0, std::memory_order_relaxed);
    w.total += w.counts[b];
  }
  w.p50 = quantile_of(w.counts, lo_, hi_, 0.50);
  w.p95 = quantile_of(w.counts, lo_, hi_, 0.95);
  w.p99 = quantile_of(w.counts, lo_, hi_, 0.99);
  return w;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, double lo, double hi,
                               std::size_t bins) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(lo, hi, bins);
  return *slot;
}

Json Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json counters = Json::object();
  for (const auto& [name, c] : counters_) counters[name] = c->value();
  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) gauges[name] = g->value();
  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_) {
    Json hj = Json::object();
    hj["lo"] = h->lo();
    hj["hi"] = h->hi();
    Json counts = Json::array();
    for (std::size_t b = 0; b < h->bins(); ++b)
      counts.push_back(Json(static_cast<double>(h->count(b))));
    hj["counts"] = std::move(counts);
    // Quantile snapshot rides along so RunSummary.metrics and the serve
    // stats endpoint expose tail latency without re-deriving it.
    hj["p50"] = h->quantile(0.50);
    hj["p95"] = h->quantile(0.95);
    hj["p99"] = h->quantile(0.99);
    histograms[name] = std::move(hj);
  }
  Json j = Json::object();
  j["counters"] = std::move(counters);
  j["gauges"] = std::move(gauges);
  j["histograms"] = std::move(histograms);
  return j;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  // In-place zeroing: references handed out earlier must stay valid.
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& global() {
  static Registry registry;
  return registry;
}

}  // namespace a4nn::util::metrics
