// Thin filesystem helpers for the data commons (directory trees of JSON
// record trails and model snapshots).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace a4nn::util {

/// How hard write_file pushes a committed file toward stable storage.
enum class Durability {
  /// Flush to the OS page cache (default). The rename is atomic, so a
  /// process crash never tears the file — but a power cut after the
  /// rename can still lose or corrupt it.
  kBuffered,
  /// fdatasync the staged file before the rename and fsync the parent
  /// directory after it, so the committed file survives a power cut.
  /// Used for manifest-journal commits and training checkpoints.
  kFsync,
};

/// Create `dir` and all parents; no-op if it already exists.
void ensure_dir(const std::filesystem::path& dir);

/// Write `content` atomically (unique tmp file + rename) so a crashed run
/// never leaves a truncated record trail in the commons.
void write_file(const std::filesystem::path& path, const std::string& content,
                Durability durability = Durability::kBuffered);

/// Read an entire file; throws std::runtime_error if missing, or if a
/// regular file yields fewer/more bytes than its stat size reports (short
/// reads on special or concurrently-truncated files).
std::string read_file(const std::filesystem::path& path);

/// Sorted list of regular files directly inside `dir` matching `extension`
/// (e.g. ".json"); empty extension matches everything. Sorting removes any
/// directory-iteration-order dependence from fsck reports and tests.
std::vector<std::filesystem::path> list_files(
    const std::filesystem::path& dir, const std::string& extension = "");

/// A unique, empty scratch directory under the system temp dir. The caller
/// owns cleanup (tests remove it; benches leave artifacts for inspection).
std::filesystem::path make_temp_dir(const std::string& prefix);

/// Crash-point fuzzing. Every write_file call crosses one numbered write
/// boundary (a process-global 1-based counter). When a crash point `k` is
/// armed — via set_crash_after_writes(k) or the A4NN_CRASH_AFTER_WRITES
/// environment variable — the k-th write stages its tmp file and then
/// _exit(1)s before the commit rename: writes 1..k-1 survive intact, write
/// k is torn (staged, never committed), and nothing later happens. This is
/// exactly the on-disk state an OS crash can leave, made deterministic so
/// an acceptance test can sweep every k. 0 disables. The programmatic
/// setter counts k from the boundaries already crossed at the call, so a
/// forked child can arm its own crash point.
void set_crash_after_writes(std::uint64_t k);

/// Write boundaries crossed so far in this process (counts attempts,
/// committed or not). Used by the fuzzer sweep to size its k range.
std::uint64_t write_op_count();

}  // namespace a4nn::util
