// Thin filesystem helpers for the data commons (directory trees of JSON
// record trails and model snapshots).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace a4nn::util {

/// Create `dir` and all parents; no-op if it already exists.
void ensure_dir(const std::filesystem::path& dir);

/// Write `content` atomically-ish (tmp file + rename) so a crashed run
/// never leaves a truncated record trail in the commons.
void write_file(const std::filesystem::path& path, const std::string& content);

/// Read an entire file; throws std::runtime_error if missing.
std::string read_file(const std::filesystem::path& path);

/// Sorted list of regular files directly inside `dir` matching `extension`
/// (e.g. ".json"); empty extension matches everything.
std::vector<std::filesystem::path> list_files(
    const std::filesystem::path& dir, const std::string& extension = "");

/// A unique, empty scratch directory under the system temp dir. The caller
/// owns cleanup (tests remove it; benches leave artifacts for inspection).
std::filesystem::path make_temp_dir(const std::string& prefix);

}  // namespace a4nn::util
