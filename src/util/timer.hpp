// Monotonic wall-clock timer used to measure real elapsed time (the
// prediction-engine overhead microbenchmark and the scheduler's measured
// wall times both use it).
#pragma once

#include <chrono>

namespace a4nn::util {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace a4nn::util
