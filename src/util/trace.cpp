#include "util/trace.hpp"

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "util/fsutil.hpp"
#include "util/log.hpp"

namespace a4nn::util::trace {

namespace {

using steady = std::chrono::steady_clock;

struct Event {
  std::string name;
  std::string cat;
  char ph = 'X';  // 'X' complete, 'i' instant
  double ts_us = 0.0;
  double dur_us = 0.0;
  int pid = kHostPid;
  int tid = 0;
  std::vector<Arg> args;
};

struct Recorder {
  std::atomic<bool> enabled{false};
  std::mutex mutex;
  steady::time_point epoch{};
  std::vector<Event> events;
  std::map<std::thread::id, int> thread_ids;
  std::map<int, std::string> process_names;
  std::map<std::pair<int, int>, std::string> thread_names;
};

Recorder& rec() {
  static Recorder r;
  return r;
}

Json args_to_json(const std::vector<Arg>& args) {
  Json j = Json::object();
  for (const auto& a : args) j[a.key] = a.value;
  return j;
}

}  // namespace

bool enabled() { return rec().enabled.load(std::memory_order_relaxed); }

void start() {
  Recorder& r = rec();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.events.clear();
  r.epoch = steady::now();
  r.enabled.store(true, std::memory_order_relaxed);
}

void stop() { rec().enabled.store(false, std::memory_order_relaxed); }

void clear() {
  Recorder& r = rec();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.events.clear();
  r.process_names.clear();
  r.thread_names.clear();
}

double now_us() {
  Recorder& r = rec();
  if (!r.enabled.load(std::memory_order_relaxed)) return 0.0;
  return std::chrono::duration<double, std::micro>(steady::now() - r.epoch)
      .count();
}

int current_tid() {
  Recorder& r = rec();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto id = std::this_thread::get_id();
  auto it = r.thread_ids.find(id);
  if (it == r.thread_ids.end())
    it = r.thread_ids.emplace(id, static_cast<int>(r.thread_ids.size())).first;
  return it->second;
}

void emit_complete(std::string name, std::string cat, double ts_us,
                   double dur_us, int pid, int tid, std::vector<Arg> args) {
  Recorder& r = rec();
  if (!r.enabled.load(std::memory_order_relaxed)) return;
  Event e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(r.mutex);
  r.events.push_back(std::move(e));
}

void emit_instant(std::string name, std::string cat, double ts_us, int pid,
                  int tid, std::vector<Arg> args) {
  Recorder& r = rec();
  if (!r.enabled.load(std::memory_order_relaxed)) return;
  Event e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'i';
  e.ts_us = ts_us;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(r.mutex);
  r.events.push_back(std::move(e));
}

void name_process(int pid, std::string name) {
  Recorder& r = rec();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.process_names[pid] = std::move(name);
}

void name_thread(int pid, int tid, std::string name) {
  Recorder& r = rec();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.thread_names[{pid, tid}] = std::move(name);
}

std::size_t event_count() {
  Recorder& r = rec();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.events.size();
}

Json to_json(const Json* extra) {
  Recorder& r = rec();
  std::lock_guard<std::mutex> lock(r.mutex);
  Json events = Json::array();
  for (const auto& [pid, name] : r.process_names) {
    Json m = Json::object();
    m["name"] = "process_name";
    m["ph"] = "M";
    m["pid"] = pid;
    m["tid"] = 0;
    Json margs = Json::object();
    margs["name"] = name;
    m["args"] = std::move(margs);
    events.push_back(std::move(m));
  }
  for (const auto& [key, name] : r.thread_names) {
    Json m = Json::object();
    m["name"] = "thread_name";
    m["ph"] = "M";
    m["pid"] = key.first;
    m["tid"] = key.second;
    Json margs = Json::object();
    margs["name"] = name;
    m["args"] = std::move(margs);
    events.push_back(std::move(m));
  }
  for (const auto& e : r.events) {
    Json j = Json::object();
    j["name"] = e.name;
    j["cat"] = e.cat;
    j["ph"] = std::string(1, e.ph);
    j["ts"] = e.ts_us;
    if (e.ph == 'X') j["dur"] = e.dur_us;
    if (e.ph == 'i') j["s"] = "t";
    j["pid"] = e.pid;
    j["tid"] = e.tid;
    if (!e.args.empty()) j["args"] = args_to_json(e.args);
    events.push_back(std::move(j));
  }
  Json doc = Json::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  if (extra && extra->is_object()) {
    for (const auto& [key, value] : extra->as_object()) doc[key] = value;
  }
  return doc;
}

bool write(const std::filesystem::path& path, const Json* extra) {
  try {
    write_file(path, to_json(extra).dump(1));
    return true;
  } catch (const std::exception& e) {
    log_error("trace: failed to write ", path.string(), ": ", e.what());
    return false;
  }
}

Scope::Scope(const char* name, const char* cat)
    : live_(enabled()), name_(name), cat_(cat) {
  if (live_) start_us_ = now_us();
}

void Scope::arg(const char* key, double value) {
  if (live_) args_.push_back({key, value});
}

Scope::~Scope() {
  if (!live_) return;
  // Capture-stop race: a scope opened while enabled still records, so its
  // span is never half-lost; emit_complete drops it if capture ended.
  const double end_us = now_us();
  emit_complete(name_, cat_, start_us_, end_us - start_us_, kHostPid,
                current_tid(), std::move(args_));
}

}  // namespace a4nn::util::trace
