// Structured tracing: a thread-safe span recorder that emits Chrome trace
// format JSON (chrome://tracing, Perfetto, speedscope). Every workflow
// stage records spans here — per-epoch training, engine fits, scheduler
// placements, journal commits — so one artifact answers both "where did
// the host time go" and "what did the simulated cluster do".
//
// Two clock domains share the file as separate pseudo-processes:
//   pid kHostPid (1):    real spans, microseconds of host monotonic time,
//                        one lane (tid) per host thread.
//   pid kVirtualPid (2): the resource manager's simulated timeline,
//                        microseconds of *virtual* seconds, one lane per
//                        simulated GPU. Retries, backoff waste, and
//                        quarantines appear as events on the device lane,
//                        so scheduler-gap analysis reads straight off the
//                        trace.
//
// Off by default, with a hard zero-overhead-when-off guarantee: every
// entry point checks one relaxed atomic load and returns; no allocation,
// no locking, no clock read. Recording never touches RNG streams or float
// accumulation order, so an instrumented run is bit-identical to a bare
// one (test_determinism locks this in).
//
// Enable with trace::start() (the a4nn_run driver maps --trace-out and the
// A4NN_TRACE environment variable onto it), then trace::write(path) to
// serialize.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace a4nn::util::trace {

/// Pseudo-process ids: real host spans, the simulated device timeline, the
/// cluster master's per-worker lanes (host microseconds; dispatches,
/// re-dispatches, heartbeat losses, quarantines), and the streaming
/// scenario's supervision tree (producer/server/recovery lanes; trigger,
/// restart, and degraded-mode events).
inline constexpr int kHostPid = 1;
inline constexpr int kVirtualPid = 2;
inline constexpr int kClusterPid = 3;
inline constexpr int kStreamPid = 4;

/// True while the recorder is capturing. Hot paths gate on this.
bool enabled();

/// Begin capturing (clears any previous buffer and restarts the clock).
void start();

/// Stop capturing. The buffer is kept for write()/to_json().
void stop();

/// Drop every buffered event and lane name.
void clear();

/// Microseconds of host time since start(); 0.0 while disabled.
double now_us();

/// Numeric span/event argument (Chrome trace "args" entry).
struct Arg {
  std::string key;
  double value = 0.0;
};

/// Record a complete span ("ph":"X"). `ts_us`/`dur_us` are microseconds in
/// the pid's clock domain. No-op while disabled.
void emit_complete(std::string name, std::string cat, double ts_us,
                   double dur_us, int pid, int tid,
                   std::vector<Arg> args = {});

/// Record an instant event ("ph":"i", thread scope). No-op while disabled.
void emit_instant(std::string name, std::string cat, double ts_us, int pid,
                  int tid, std::vector<Arg> args = {});

/// Label a pseudo-process / lane. Names are retained across start()/stop()
/// (but not clear()) and serialized as metadata events.
void name_process(int pid, std::string name);
void name_thread(int pid, int tid, std::string name);

/// Dense id for the calling host thread (allocated on first use).
int current_tid();

/// Number of buffered events (metadata excluded). For tests.
std::size_t event_count();

/// Serialize the buffer as a Chrome-trace JSON document:
///   {"traceEvents": [...], "displayTimeUnit": "ms", ...extra}
/// `extra` top-level keys (e.g. a metrics snapshot) are merged in;
/// chrome://tracing and Perfetto ignore keys they do not know.
Json to_json(const Json* extra = nullptr);

/// Write to_json(extra) to `path` (pretty-printed). Returns false and logs
/// on I/O failure.
bool write(const std::filesystem::path& path, const Json* extra = nullptr);

/// RAII span on the calling host thread's lane. When tracing is off the
/// constructor reads one atomic and does nothing else.
class Scope {
 public:
  Scope(const char* name, const char* cat);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  /// Attach a numeric argument (no-op when the scope is not recording).
  void arg(const char* key, double value);

 private:
  bool live_;
  const char* name_;
  const char* cat_;
  double start_us_ = 0.0;
  std::vector<Arg> args_;
};

}  // namespace a4nn::util::trace
