#include "util/shutdown.hpp"

#include <csignal>

#include <atomic>

namespace a4nn::util {

namespace {

std::atomic<int> g_signal{0};
std::atomic<bool> g_requested{false};

void on_signal(int sig) {
  // Async-signal-safe: two atomic stores, then flip the disposition back to
  // default so a second signal kills the process immediately.
  g_signal.store(sig, std::memory_order_relaxed);
  g_requested.store(true, std::memory_order_relaxed);
  struct sigaction sa {};
  sa.sa_handler = SIG_DFL;
  ::sigaction(sig, &sa, nullptr);
}

}  // namespace

void install_shutdown_handlers() {
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking syscalls must EINTR out
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

bool shutdown_requested() {
  return g_requested.load(std::memory_order_relaxed);
}

int shutdown_signal() { return g_signal.load(std::memory_order_relaxed); }

void request_shutdown() { g_requested.store(true, std::memory_order_relaxed); }

}  // namespace a4nn::util
