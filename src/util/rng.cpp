#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace a4nn::util {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n must be > 0");
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::uint64_t Rng::poisson(double lambda) {
  if (lambda < 0.0) throw std::invalid_argument("poisson: lambda must be >= 0");
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-lambda.
    const double limit = std::exp(-lambda);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // photon-count regime (lambda >> 1) where relative error is negligible.
  const double x = normal(lambda, std::sqrt(lambda));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next_u64()); }

RngState Rng::state() const {
  RngState st;
  for (std::size_t i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.has_cached_normal = has_cached_normal_;
  st.cached_normal = cached_normal_;
  return st;
}

void Rng::set_state(const RngState& state) {
  for (std::size_t i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace a4nn::util
