// Deterministic fault injection for the simulated cluster.
//
// Multi-day NAS campaigns on shared HPC clusters see transient device
// faults, permanently dying GPUs, crashing training jobs, and stragglers.
// The injector models all four, driven entirely by the run seed: every
// decision is a pure hash of (seed, generation, job, attempt), never a
// sequential RNG draw, so outcomes are bit-identical across replays no
// matter how pool threads interleave. Faults perturb only the *virtual*
// schedule (retries, backoff, quarantine); they never change training
// results, which is what makes kill-and-resume runs reproduce the exact
// Pareto front of an undisturbed run.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/json.hpp"

namespace a4nn::util {

struct FaultConfig {
  /// Master switch; when false the injector never fires (but the scheduler
  /// still contains real job exceptions and honours max_retries for them).
  bool enabled = false;
  /// Probability that one job attempt hits a transient device fault (the
  /// attempt fails partway through and is retried after backoff).
  double transient_failure_prob = 0.0;
  /// Probability, per device per generation, that the device fails
  /// permanently while running its first job of the generation. The device
  /// is quarantined for the rest of the run; its queue is rescheduled onto
  /// healthy devices. The last healthy device never fails.
  double permanent_failure_prob = 0.0;
  /// Probability that one job attempt crashes at the end of its run (the
  /// whole attempt's virtual time is wasted).
  double job_crash_prob = 0.0;
  /// Probability that one attempt runs as a straggler.
  double straggler_prob = 0.0;
  /// Duration multiplier applied to straggler attempts (> 1).
  double straggler_slowdown = 2.0;
  /// Injected faults stop firing for a job after this many retries (so a
  /// job always completes); real job exceptions are re-run at most this
  /// many extra times before the job is declared failed.
  std::size_t max_retries = 3;
  /// Capped exponential backoff charged in virtual time before a failed
  /// attempt is retried: min(cap, base * multiplier^(attempt-1)).
  double backoff_base_seconds = 5.0;
  double backoff_multiplier = 2.0;
  double backoff_cap_seconds = 120.0;
  /// Multiplicative jitter applied to each backoff: the delay is scaled by
  /// a factor uniform in [1 - jitter, 1 + jitter]. The draw is a pure hash
  /// of (seed, generation, job, attempt) — never a wall-clock or sequential
  /// RNG source — so jittered retry timelines replay bit-identically.
  double backoff_jitter = 0.0;

  // Network fault kinds (cluster master/worker runs). Probabilities are
  // drawn per (generation/epoch, peer, event) coordinate, deterministic on
  // both ends of a connection sharing the seed.
  /// Probability that a dispatch hits a simulated network partition: the
  /// master drops the connection to the worker mid-flight.
  double partition_prob = 0.0;
  /// Probability that a worker "dies" (abruptly closes and stops) right
  /// after finishing a job, before its result reaches the master.
  double worker_crash_prob = 0.0;
  /// Probability that a result is sent over a slow link (delayed by
  /// slow_link_delay_ms of real time — a straggler link, not a failure).
  double slow_link_prob = 0.0;
  double slow_link_delay_ms = 200.0;
  /// Probability that a frame is torn mid-send: only a prefix of the bytes
  /// is written before the connection closes.
  double torn_frame_prob = 0.0;

  // Stream fault kinds (in situ streaming scenario, src/stream). Each
  // oracle is keyed by (frame index, attempt): the producer replays frame
  // indices deterministically across restarts, and the attempt coordinate
  // lets a fault clear on retry instead of wedging a restart loop on the
  // same frame forever.
  /// Probability that the producer stalls (stops heartbeating) at a frame
  /// for stream_stall_ms of real time — watchdog-deadline fodder.
  double stream_stall_prob = 0.0;
  double stream_stall_ms = 50.0;
  /// Probability that a frame opens an unpaced burst of
  /// stream_burst_frames emitted back-to-back (queue-pressure spike).
  double stream_burst_prob = 0.0;
  std::size_t stream_burst_frames = 16;
  /// Probability that a frame's payload is corrupted in flight (poisoned
  /// with non-finite pixels); the consumer must detect and drop it.
  double stream_corrupt_prob = 0.0;
  /// Probability that a frame opens a rate spike: the next
  /// stream_rate_spike_frames are paced stream_rate_spike_factor faster.
  double stream_rate_spike_prob = 0.0;
  double stream_rate_spike_factor = 4.0;
  std::size_t stream_rate_spike_frames = 32;
  /// Probability that the producer child crashes (throws) at a frame.
  double stream_crash_prob = 0.0;
  /// Probability that one recovery-action attempt crashes mid-execution
  /// (keyed by (action id, attempt) instead of frame).
  double stream_recovery_crash_prob = 0.0;

  /// Fault stream seed; the workflow derives it from the run seed when 0.
  std::uint64_t seed = 0;

  util::Json to_json() const;
};

/// Stateless, hash-based fault oracle. Thread-safe (const everywhere).
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  bool enabled() const { return config_.enabled; }
  const FaultConfig& config() const { return config_; }

  /// Does `device` die permanently during this generation?
  bool device_fails_permanently(std::uint64_t generation, int device) const;

  /// Does this attempt of `job` hit a transient device fault?
  bool transient_fault(std::uint64_t generation, std::size_t job,
                       std::size_t attempt) const;

  /// Does this attempt of `job` crash at the end of its run?
  bool job_crash(std::uint64_t generation, std::size_t job,
                 std::size_t attempt) const;

  /// Fraction of the attempt's duration consumed before a mid-run failure,
  /// uniform in (0, 1).
  double fail_fraction(std::uint64_t generation, std::size_t job,
                       std::size_t attempt) const;

  /// Duration multiplier for this attempt (1.0, or straggler_slowdown).
  double straggler_multiplier(std::uint64_t generation, std::size_t job,
                              std::size_t attempt) const;

  /// Virtual seconds of capped exponential backoff before retry number
  /// `attempt` (1-based attempt that just failed).
  double backoff_seconds(std::size_t attempt) const;

  /// backoff_seconds(attempt) scaled by the deterministic jitter factor for
  /// (generation, job, attempt). Equal to backoff_seconds(attempt) when
  /// backoff_jitter is 0.
  double jittered_backoff_seconds(std::uint64_t generation, std::size_t job,
                                  std::size_t attempt) const;

  // Network fault oracles (cluster transport). `epoch` is whatever
  // monotonic coordinate the caller replays deterministically — the
  // master's dispatch count, the worker's completed-job count.
  bool network_partition(std::uint64_t epoch, std::size_t peer,
                         std::size_t attempt) const;
  bool worker_crash(std::uint64_t epoch, std::size_t peer,
                    std::size_t attempt) const;
  bool slow_link(std::uint64_t epoch, std::size_t peer,
                 std::size_t attempt) const;
  bool torn_frame(std::uint64_t epoch, std::size_t peer,
                  std::size_t attempt) const;

  // Stream fault oracles (src/stream). `frame` is the producer's frame
  // index, `attempt` the supervising restart count of the child drawing
  // the fault — both replayed deterministically.
  bool stream_stall(std::uint64_t frame, std::size_t attempt) const;
  bool stream_burst(std::uint64_t frame, std::size_t attempt) const;
  bool stream_corrupt_frame(std::uint64_t frame) const;
  bool stream_rate_spike(std::uint64_t frame, std::size_t attempt) const;
  bool stream_crash(std::uint64_t frame, std::size_t attempt) const;
  bool stream_recovery_crash(std::uint64_t action, std::size_t attempt) const;

 private:
  /// Uniform [0, 1) draw from the hash of the given coordinates.
  double draw(std::uint64_t tag, std::uint64_t a, std::uint64_t b,
              std::uint64_t c) const;

  FaultConfig config_;
};

}  // namespace a4nn::util
