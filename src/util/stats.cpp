#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace a4nn::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_of: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_of: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("percentile: p outside [0, 100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2)
    throw std::invalid_argument("linear_fit: need >= 2 paired points");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  LinearFit fit;
  fit.slope = sxx == 0.0 ? 0.0 : sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.slope * xs[i] + fit.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - my) * (ys[i] - my);
  }
  fit.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

std::size_t Histogram::total() const {
  return std::accumulate(counts.begin(), counts.end(), std::size_t{0});
}

double Histogram::bin_center(std::size_t i) const {
  const double width = (hi - lo) / static_cast<double>(counts.size());
  return lo + (static_cast<double>(i) + 0.5) * width;
}

std::string Histogram::render(int max_width) const {
  std::string out;
  const std::size_t peak =
      counts.empty() ? 0 : *std::max_element(counts.begin(), counts.end());
  const double width = (hi - lo) / static_cast<double>(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof(label), "[%6.2f, %6.2f) %5zu ",
                  lo + width * static_cast<double>(i),
                  lo + width * static_cast<double>(i + 1), counts[i]);
    out += label;
    const int bar =
        peak == 0 ? 0
                  : static_cast<int>(static_cast<double>(counts[i]) /
                                     static_cast<double>(peak) * max_width);
    out.append(static_cast<std::size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

Histogram histogram(std::span<const double> xs, double lo, double hi,
                    std::size_t bins) {
  if (bins == 0) throw std::invalid_argument("histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("histogram: hi must be > lo");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    double idx = (x - lo) / width;
    std::size_t i =
        idx < 0.0 ? 0
                  : std::min(bins - 1, static_cast<std::size_t>(idx));
    ++h.counts[i];
  }
  return h;
}

}  // namespace a4nn::util
