#include "util/csv.hpp"

#include <charconv>
#include <stdexcept>

#include "util/fsutil.hpp"

namespace a4nn::util {

namespace {

bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

void append_cell(std::string& out, const std::string& cell) {
  if (!needs_quoting(cell)) {
    out += cell;
    return;
  }
  out += '"';
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

void append_row(std::string& out, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out += ',';
    append_cell(out, cells[i]);
  }
  out += '\n';
}

std::string format_double(double d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", d);
  return buf;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty())
    throw std::invalid_argument("CsvWriter: header must be non-empty");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("CsvWriter: row width mismatch");
  rows_.push_back(std::move(cells));
}

void CsvWriter::add_numeric_row(const std::vector<double>& cells) {
  std::vector<std::string> strs;
  strs.reserve(cells.size());
  for (double d : cells) strs.push_back(format_double(d));
  add_row(std::move(strs));
}

std::string CsvWriter::to_string() const {
  std::string out;
  append_row(out, header_);
  for (const auto& row : rows_) append_row(out, row);
  return out;
}

void CsvWriter::save(const std::filesystem::path& path) const {
  write_file(path, to_string());
}

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column '" + name + "'");
}

std::vector<double> CsvTable::numeric_column(const std::string& name) const {
  const std::size_t col = column(name);
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    double d = 0.0;
    const std::string& cell = row.at(col);
    auto [ptr, ec] = std::from_chars(cell.data(), cell.data() + cell.size(), d);
    if (ec != std::errc() || ptr != cell.data() + cell.size())
      throw std::runtime_error("CsvTable: non-numeric cell '" + cell + "'");
    out.push_back(d);
  }
  return out;
}

CsvTable parse_csv(const std::string& text) {
  CsvTable table;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool row_has_data = false;

  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
  };
  auto end_row = [&] {
    end_cell();
    if (table.header.empty()) {
      table.header = std::move(row);
    } else {
      table.rows.push_back(std::move(row));
    }
    row.clear();
    row_has_data = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"': in_quotes = true; row_has_data = true; break;
      case ',': end_cell(); row_has_data = true; break;
      case '\r': break;
      case '\n': end_row(); break;
      default: cell += c; row_has_data = true;
    }
  }
  if (row_has_data || !cell.empty() || !row.empty()) end_row();
  if (in_quotes) throw std::runtime_error("parse_csv: unterminated quote");
  return table;
}

}  // namespace a4nn::util
