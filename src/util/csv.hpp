// CSV emit/parse for metric exports. Every bench binary writes its series
// to CSV next to its stdout table so figures can be re-plotted externally.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace a4nn::util {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Convenience for purely numeric rows (distinct name: a braced list of
  /// string literals must not be ambiguous with this overload).
  void add_numeric_row(const std::vector<double>& cells);

  std::size_t row_count() const { return rows_.size(); }
  std::string to_string() const;
  void save(const std::filesystem::path& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column; throws if absent.
  std::size_t column(const std::string& name) const;
  /// Column values parsed as doubles.
  std::vector<double> numeric_column(const std::string& name) const;
};

/// Parse CSV text with RFC-4180 quoting. First row is the header.
CsvTable parse_csv(const std::string& text);

}  // namespace a4nn::util
