// ASCII table renderer used by the bench harnesses to print paper-style
// result tables (Figures 6-9, Table 3) to stdout.
#pragma once

#include <string>
#include <vector>

namespace a4nn::util {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with column widths fitted to content, `|` separators, and a
  /// header rule.
  std::string render() const;

  /// Helper: fixed-precision double formatting for cells.
  static std::string num(double value, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace a4nn::util
