#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace a4nn::util {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty())
    throw std::invalid_argument("AsciiTable: header must be non-empty");
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("AsciiTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::num(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  auto emit_row = [&](std::string& out, const std::vector<std::string>& row) {
    out += '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += ' ';
      out += row[c];
      out.append(widths[c] - row[c].size() + 1, ' ');
      out += '|';
    }
    out += '\n';
  };

  std::string out;
  emit_row(out, header_);
  out += '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out.append(widths[c] + 2, '-');
    out += '|';
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(out, row);
  return out;
}

}  // namespace a4nn::util
