#include "util/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace a4nn::util {

bool Json::as_bool() const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  throw JsonError("Json: not a bool");
}

double Json::as_number() const {
  if (const double* d = std::get_if<double>(&value_)) return *d;
  throw JsonError("Json: not a number");
}

std::int64_t Json::as_int() const {
  return static_cast<std::int64_t>(std::llround(as_number()));
}

const std::string& Json::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) return *s;
  throw JsonError("Json: not a string");
}

const JsonArray& Json::as_array() const {
  if (const JsonArray* a = std::get_if<JsonArray>(&value_)) return *a;
  throw JsonError("Json: not an array");
}

JsonArray& Json::as_array() {
  if (JsonArray* a = std::get_if<JsonArray>(&value_)) return *a;
  throw JsonError("Json: not an array");
}

const JsonObject& Json::as_object() const {
  if (const JsonObject* o = std::get_if<JsonObject>(&value_)) return *o;
  throw JsonError("Json: not an object");
}

JsonObject& Json::as_object() {
  if (JsonObject* o = std::get_if<JsonObject>(&value_)) return *o;
  throw JsonError("Json: not an object");
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = JsonObject{};
  return as_object()[key];
}

const Json& Json::at(const std::string& key) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) throw JsonError("Json: missing key '" + key + "'");
  return it->second;
}

const Json& Json::at(std::size_t index) const {
  const auto& arr = as_array();
  if (index >= arr.size()) throw JsonError("Json: array index out of range");
  return arr[index];
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  throw JsonError("Json: size() on non-container");
}

double Json::number_or(const std::string& key, double fallback) const {
  return contains(key) ? at(key).as_number() : fallback;
}

std::string Json::string_or(const std::string& key, std::string fallback) const {
  return contains(key) ? at(key).as_string() : std::move(fallback);
}

bool Json::bool_or(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

void Json::push_back(Json v) {
  if (is_null()) value_ = JsonArray{};
  as_array().push_back(std::move(v));
}

std::vector<double> Json::as_double_vector() const {
  const auto& arr = as_array();
  std::vector<double> out;
  out.reserve(arr.size());
  for (const auto& v : arr) out.push_back(v.as_number());
  return out;
}

namespace {

void escape_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void format_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; record trails should never contain them, but we
    // degrade to null rather than emit an unparseable document.
    out += "null";
    return;
  }
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
    return;
  }
  // Shortest representation that round-trips.
  std::array<char, 32> buf{};
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), d);
  if (ec == std::errc()) {
    out.append(buf.data(), ptr);
  } else {
    char fallback[32];
    std::snprintf(fallback, sizeof(fallback), "%.17g", d);
    out += fallback;
  }
}

}  // namespace

void Json::dump_impl(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(static_cast<std::size_t>(indent) * (depth + 1), ' ') : "";
  const std::string close_pad = pretty ? std::string(static_cast<std::size_t>(indent) * depth, ' ') : "";
  const char* nl = pretty ? "\n" : "";
  const char* colon = pretty ? ": " : ":";

  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    format_number(out, as_number());
  } else if (is_string()) {
    escape_string(out, as_string());
  } else if (is_array()) {
    const auto& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (std::size_t i = 0; i < arr.size(); ++i) {
      out += pad;
      arr[i].dump_impl(out, indent, depth + 1);
      if (i + 1 < arr.size()) out += ',';
      out += nl;
    }
    out += close_pad;
    out += ']';
  } else {
    const auto& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    std::size_t i = 0;
    for (const auto& [k, v] : obj) {
      out += pad;
      escape_string(out, k);
      out += colon;
      v.dump_impl(out, indent, depth + 1);
      if (++i < obj.size()) out += ',';
      out += nl;
    }
    out += close_pad;
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& msg) const {
    throw JsonError("JSON parse error at offset " + std::to_string(pos_) +
                    ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(const char* lit) {
    std::size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = take();
      if (c == '"') break;
      if (c == '\\') {
        char esc = take();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape");
            }
            // Encode as UTF-8 (basic multilingual plane only; surrogate
            // pairs never appear in our record trails).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("invalid escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    double d = 0.0;
    auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (ec != std::errc() || ptr != text_.data() + pos_) fail("invalid number");
    return Json(d);
  }
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace a4nn::util
