// Deterministic pseudo-random number generation for all stochastic
// components of A4NN. Every subsystem (dataset synthesis, NAS operators,
// weight initialization, schedulers) receives an explicit seed so that
// experiments are reproducible bit-for-bit, which is a core claim of the
// paper's lineage/data-commons story.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace a4nn::util {

/// Snapshot of an Rng's full internal state. Lets the orchestrator
/// checkpoint training mid-run and resume with a bit-identical stream
/// (fault-tolerant job restart).
struct RngState {
  std::array<std::uint64_t, 4> s{};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// SplitMix64: used to expand a single user seed into independent streams.
/// Passes BigCrush when used as a 64-bit generator; here it seeds Xoshiro.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Small, fast, and high quality;
/// the repository's canonical generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Poisson-distributed count with the given mean. Uses Knuth's method
  /// for small lambda and a normal approximation for large lambda (the
  /// XFEL photon-noise model spans lambda from <1 to >1e4).
  std::uint64_t poisson(double lambda);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (stream splitting). Used to give
  /// each NN / worker its own stream regardless of evaluation order.
  Rng split();

  /// Checkpoint/restore the exact generator state (epoch-granular resume).
  RngState state() const;
  void set_state(const RngState& state);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace a4nn::util
