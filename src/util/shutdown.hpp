// Cooperative graceful shutdown for the CLI drivers.
//
// install_shutdown_handlers() points SIGINT/SIGTERM at an async-signal-safe
// handler that sets one process-wide flag. Long-running loops (workflow
// generations, serve client fleets, the stream scenario) poll
// shutdown_requested() and wind down: drain engines, flush trace/metrics/
// journal artifacts, and exit 0 — instead of the default disposition
// killing the process with half-written outputs.
//
// The handlers are installed *without* SA_RESTART on purpose: a blocking
// syscall returns EINTR so the enclosing loop gets a chance to observe the
// flag promptly. util/fsutil's read/write loops retry on EINTR, so signal
// delivery can never tear an artifact.
//
// A second SIGINT/SIGTERM while the first is still draining restores the
// default disposition and re-raises — an impatient operator can always
// kill the process the hard way.
#pragma once

namespace a4nn::util {

/// Install the SIGINT/SIGTERM handlers. Idempotent; call once near the top
/// of main().
void install_shutdown_handlers();

/// True once SIGINT or SIGTERM has been delivered (or request_shutdown()
/// was called). Safe from any thread; never resets.
bool shutdown_requested();

/// The signal that triggered shutdown (0 when none yet). For log lines.
int shutdown_signal();

/// Programmatic trigger, for tests and internal escalation paths.
void request_shutdown();

}  // namespace a4nn::util
