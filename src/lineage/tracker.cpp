#include "lineage/tracker.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <map>
#include <set>
#include <stdexcept>

#include "util/checksum.hpp"
#include "util/frame.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace a4nn::lineage {

namespace fs = std::filesystem;

std::string model_dir_name(int model_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "model_%05d", model_id);
  return buf;
}

std::string snapshot_file_name(std::size_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "epoch_%04zu.ckpt.json", epoch);
  return buf;
}

std::string training_state_file_name(std::size_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "epoch_%04zu.state.json", epoch);
  return buf;
}

std::string manifest_file_name() { return "manifest.journal"; }

std::optional<std::size_t> parse_indexed_name(std::string_view name,
                                              std::string_view prefix,
                                              std::string_view suffix) {
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.substr(0, prefix.size()) != prefix) return std::nullopt;
  if (!suffix.empty() && name.substr(name.size() - suffix.size()) != suffix)
    return std::nullopt;
  const std::string_view digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  std::size_t value = 0;
  const auto [end, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc{} || end != digits.data() + digits.size())
    return std::nullopt;
  return value;
}

std::string read_artifact(const fs::path& path) {
  return util::unframe_or_legacy(util::read_file(path)).payload;
}

namespace {

/// One committed artifact as recorded in the manifest journal.
struct ManifestEntry {
  std::string rel;        // path relative to the commons root
  std::uint64_t size = 0; // file size as stored (framed bytes)
  std::uint32_t crc = 0;  // CRC-32 of the file bytes as stored
};

/// Serialized form: `<crc32 of body, 8 hex> <body>` where body is
/// `<artifact crc, 8 hex> <size> <relative path>`. The leading line CRC
/// makes a torn or bit-flipped journal line deterministically detectable.
std::string manifest_line(const ManifestEntry& entry) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%08x %llu ", entry.crc,
                static_cast<unsigned long long>(entry.size));
  const std::string body = buf + entry.rel;
  char line_crc[12];
  std::snprintf(line_crc, sizeof(line_crc), "%08x ", util::crc32(body));
  return line_crc + body;
}

bool parse_manifest_line(std::string_view line, ManifestEntry& out) {
  // <8 hex line-crc> ' ' <8 hex artifact-crc> ' ' <size> ' ' <rel path>
  if (line.size() < 9 || line[8] != ' ') return false;
  std::uint32_t line_crc = 0;
  auto [lp, lec] = std::from_chars(line.data(), line.data() + 8, line_crc, 16);
  if (lec != std::errc{} || lp != line.data() + 8) return false;
  const std::string_view body = line.substr(9);
  if (util::crc32(body) != line_crc) return false;

  if (body.size() < 9 || body[8] != ' ') return false;
  std::uint32_t crc = 0;
  auto [cp, cec] = std::from_chars(body.data(), body.data() + 8, crc, 16);
  if (cec != std::errc{} || cp != body.data() + 8) return false;
  std::string_view rest = body.substr(9);

  std::uint64_t size = 0;
  auto [sp, sec] = std::from_chars(rest.data(), rest.data() + rest.size(), size);
  if (sec != std::errc{} || sp == rest.data() ||
      sp == rest.data() + rest.size() || *sp != ' ')
    return false;
  rest.remove_prefix(static_cast<std::size_t>(sp - rest.data()) + 1);
  if (rest.empty()) return false;

  out.rel = std::string(rest);
  out.size = size;
  out.crc = crc;
  return true;
}

/// Parse a journal image into entries (in append order), returning the
/// number of torn/malformed lines dropped. An unterminated final line is
/// torn by definition — a truncation can cut exactly at a line boundary.
std::size_t parse_manifest(std::string_view text,
                           std::vector<ManifestEntry>& out) {
  std::size_t torn = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const bool terminated = nl != std::string_view::npos;
    const std::string_view line =
        text.substr(pos, (terminated ? nl : text.size()) - pos);
    pos = terminated ? nl + 1 : text.size();
    if (line.empty()) continue;
    ManifestEntry entry;
    if (terminated && parse_manifest_line(line, entry))
      out.push_back(std::move(entry));
    else
      ++torn;
  }
  return torn;
}

}  // namespace

LineageTracker::LineageTracker(TrackerConfig config)
    : config_(std::move(config)) {
  if (config_.root.empty())
    throw std::invalid_argument("LineageTracker: empty root path");
  util::ensure_dir(config_.root);
  util::ensure_dir(config_.root / "models");
  // Resume on an existing commons: adopt the surviving journal so appends
  // supersede instead of clobbering. Torn lines are dropped here and
  // repaired on disk by the next commit or a deep fsck.
  const fs::path journal = config_.root / manifest_file_name();
  if (fs::exists(journal)) {
    std::string text;
    try {
      text = util::read_file(journal);
    } catch (const std::exception& e) {
      util::log_warn("tracker: unreadable manifest journal (", e.what(), ")");
    }
    std::vector<ManifestEntry> entries;
    const std::size_t torn = parse_manifest(text, entries);
    if (torn > 0)
      util::log_warn("tracker: dropped ", torn, " torn journal line(s)");
    for (const auto& entry : entries) {
      journal_text_ += manifest_line(entry);
      journal_text_ += '\n';
    }
  }
}

void LineageTracker::commit_locked(const fs::path& path,
                                   const std::string& payload,
                                   util::Durability durability) {
  util::trace::Scope span("journal.commit", "lineage");
  if (!config_.durable) durability = util::Durability::kBuffered;
  const std::string framed = util::frame(payload);
  util::write_file(path, framed, durability);

  ManifestEntry entry;
  entry.rel = fs::relative(path, config_.root).generic_string();
  entry.size = framed.size();
  entry.crc = util::crc32(framed);
  journal_text_ += manifest_line(entry);
  journal_text_ += '\n';
  const util::Durability journal_durability = config_.durable
                                                  ? util::Durability::kFsync
                                                  : util::Durability::kBuffered;
  util::Timer fsync_timer;
  util::write_file(config_.root / manifest_file_name(), journal_text_,
                   journal_durability);
  const double journal_write_seconds = fsync_timer.seconds();

  const double bytes =
      static_cast<double>(framed.size() + journal_text_.size());
  if (metrics_) {
    metrics_->counter("journal.commits").add();
    metrics_->counter("journal.bytes_written").add(bytes);
    if (journal_durability == util::Durability::kFsync)
      metrics_->counter("journal.fsync_seconds").add(journal_write_seconds);
  }
  span.arg("artifact_bytes", static_cast<double>(framed.size()));
  span.arg("journal_bytes", static_cast<double>(journal_text_.size()));
  span.arg("journal_write_seconds", journal_write_seconds);
}

void LineageTracker::record_search_config(const util::Json& config) {
  if (sealed_.load()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  commit_locked(config_.root / "search.json", config.dump(2),
                util::Durability::kBuffered);
}

void LineageTracker::record_artifact(const std::string& rel_path,
                                     const util::Json& doc) {
  if (sealed_.load()) return;
  if (rel_path.empty() || rel_path.find('/') != std::string::npos ||
      rel_path.find("..") != std::string::npos)
    throw std::invalid_argument(
        "record_artifact: rel_path must be a plain root-level file name");
  std::lock_guard<std::mutex> lock(mutex_);
  commit_locked(config_.root / rel_path, doc.dump(2),
                util::Durability::kBuffered);
}

bool LineageTracker::wants_snapshot(std::size_t epoch) const {
  return config_.snapshot_every > 0 && epoch % config_.snapshot_every == 0;
}

fs::path LineageTracker::model_dir(int model_id) const {
  return config_.root / "models" / model_dir_name(model_id);
}

void LineageTracker::record_model_epoch(int model_id, std::size_t epoch,
                                        const nn::Model& model) {
  if (sealed_.load()) return;
  const util::Json ckpt = model.checkpoint();
  std::lock_guard<std::mutex> lock(mutex_);
  commit_locked(model_dir(model_id) / snapshot_file_name(epoch), ckpt.dump(),
                util::Durability::kFsync);
}

void LineageTracker::record_training_state(int model_id, std::size_t epoch,
                                           const util::Json& state) {
  if (sealed_.load()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  commit_locked(model_dir(model_id) / training_state_file_name(epoch),
                state.dump(), util::Durability::kFsync);
}

void LineageTracker::record_evaluation(const nas::EvaluationRecord& record) {
  if (sealed_.load()) return;
  const util::Json j = record.to_json();
  std::lock_guard<std::mutex> lock(mutex_);
  commit_locked(model_dir(record.model_id) / "record.json", j.dump(2),
                util::Durability::kBuffered);
}

DataCommons::DataCommons(fs::path root) : root_(std::move(root)) {
  if (!fs::exists(root_ / "models"))
    throw std::invalid_argument("DataCommons: " + root_.string() +
                                " is not a commons tree");
}

util::Json DataCommons::search_config() const {
  return util::Json::parse(read_artifact(root_ / "search.json"));
}

std::vector<int> DataCommons::model_ids() const {
  std::vector<int> ids;
  for (const auto& entry : fs::directory_iterator(root_ / "models")) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    const auto id = parse_indexed_name(name, "model_", "");
    if (!id) {
      util::log_warn("commons: ignoring non-model directory models/", name);
      continue;
    }
    ids.push_back(static_cast<int>(*id));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::vector<nas::EvaluationRecord> DataCommons::load_records() const {
  std::vector<nas::EvaluationRecord> records;
  for (int id : model_ids()) {
    const fs::path path = root_ / "models" / model_dir_name(id) / "record.json";
    if (!fs::exists(path)) continue;
    records.push_back(nas::EvaluationRecord::from_json(
        util::Json::parse(read_artifact(path))));
  }
  return records;
}

namespace {

std::vector<std::size_t> epochs_with_suffix(const fs::path& dir,
                                            const std::string& suffix) {
  std::vector<std::size_t> epochs;
  for (const auto& file : util::list_files(dir)) {
    const auto epoch =
        parse_indexed_name(file.filename().string(), "epoch_", suffix);
    if (epoch) epochs.push_back(*epoch);
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

}  // namespace

std::vector<std::size_t> DataCommons::snapshot_epochs(int model_id) const {
  return epochs_with_suffix(root_ / "models" / model_dir_name(model_id),
                            ".ckpt.json");
}

std::vector<std::size_t> DataCommons::training_state_epochs(
    int model_id) const {
  return epochs_with_suffix(root_ / "models" / model_dir_name(model_id),
                            ".state.json");
}

nn::Model DataCommons::load_model(int model_id, std::size_t epoch) const {
  const fs::path path =
      root_ / "models" / model_dir_name(model_id) / snapshot_file_name(epoch);
  return nn::Model::from_checkpoint(util::Json::parse(read_artifact(path)));
}

util::Json DataCommons::load_training_state(int model_id,
                                            std::size_t epoch) const {
  const fs::path path = root_ / "models" / model_dir_name(model_id) /
                        training_state_file_name(epoch);
  return util::Json::parse(read_artifact(path));
}

util::Json DataCommons::load_artifact(const std::string& rel_path) const {
  return util::Json::parse(read_artifact(root_ / rel_path));
}

bool DataCommons::has_artifact(const std::string& rel_path) const {
  return fs::exists(root_ / rel_path);
}

namespace {

/// Move a corrupt file into <root>/quarantine/<relative path>, recording
/// the reason. Never throws: fsck must make progress past any breakage.
void quarantine_file(const fs::path& root, const fs::path& file,
                     const std::string& reason, FsckReport& report) {
  const fs::path rel = fs::relative(file, root);
  const fs::path target = root / "quarantine" / rel;
  std::error_code ec;
  fs::create_directories(target.parent_path(), ec);
  fs::rename(file, target, ec);
  if (ec) fs::remove(file, ec);  // cross-device or racing writer: drop it
  report.issues.push_back({rel, reason});
  ++report.files_quarantined;
  util::log_warn("fsck: quarantined ", rel.string(), " (", reason, ")");
}

}  // namespace

FsckReport DataCommons::fsck(FsckMode mode) {
  FsckReport report;
  report.deep = mode == FsckMode::kDeep;

  // Leftover staging files from crashed writers anywhere in the tree.
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root_, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file()) continue;
    const std::string name = it->path().filename().string();
    if (name.find(".tmp") != std::string::npos) {
      std::error_code rm;
      fs::remove(it->path(), rm);
      if (!rm) ++report.tmp_files_removed;
    }
  }

  const fs::path search = root_ / "search.json";
  if (fs::exists(search)) {
    try {
      util::Json::parse(read_artifact(search));
    } catch (const std::exception& e) {
      quarantine_file(root_, search, e.what(), report);
    }
  }

  for (int id : model_ids()) {
    ++report.models_scanned;
    const fs::path dir = root_ / "models" / model_dir_name(id);

    const fs::path record = dir / "record.json";
    if (fs::exists(record)) {
      try {
        nas::EvaluationRecord::from_json(
            util::Json::parse(read_artifact(record)));
        ++report.records_valid;
      } catch (const std::exception& e) {
        quarantine_file(root_, record, e.what(), report);
      }
    }

    for (const auto& file : util::list_files(dir, ".json")) {
      const std::string name = file.filename().string();
      if (name.rfind("epoch_", 0) != 0) continue;
      try {
        const util::Json j = util::Json::parse(read_artifact(file));
        if (name.ends_with(".ckpt.json")) {
          if (!j.contains("spec") || !j.contains("weights") ||
              !j.contains("input_shape"))
            throw util::JsonError("checkpoint missing spec/weights");
        } else if (name.ends_with(".state.json")) {
          if (!j.contains("epoch") || !j.contains("rng") ||
              !j.contains("optimizer") || !j.contains("record"))
            throw util::JsonError("training state missing required fields");
        }
      } catch (const std::exception& e) {
        quarantine_file(root_, file, e.what(), report);
      }
    }
  }

  if (mode == FsckMode::kDeep) {
    IntegrityReport& integrity = report.integrity;

    // Relative paths already dealt with by the parse-level pass above —
    // their journal entries are dropped silently, not re-reported.
    std::set<std::string> handled;
    for (const auto& issue : report.issues)
      handled.insert(issue.path.generic_string());

    // Every artifact surviving on disk, keyed by its journal-relative path.
    // Root-level .json files cover search.json plus run-level artifacts
    // committed via record_artifact (memo_index.json, table.json, ...).
    std::map<std::string, fs::path> disk;
    for (const auto& file : util::list_files(root_, ".json"))
      disk[file.filename().string()] = file;
    for (int id : model_ids()) {
      const fs::path dir = root_ / "models" / model_dir_name(id);
      for (const auto& file : util::list_files(dir, ".json")) {
        const std::string name = file.filename().string();
        if (name != "record.json" &&
            !parse_indexed_name(name, "epoch_", ".ckpt.json") &&
            !parse_indexed_name(name, "epoch_", ".state.json"))
          continue;
        disk[fs::relative(file, root_).generic_string()] = file;
      }
    }

    // Load the journal; torn lines are dropped and counted.
    const fs::path journal_path = root_ / manifest_file_name();
    const bool have_journal = fs::exists(journal_path);
    std::vector<ManifestEntry> entries;
    if (have_journal) {
      std::string text;
      try {
        text = util::read_file(journal_path);
      } catch (const std::exception& e) {
        util::log_warn("fsck: unreadable manifest journal (", e.what(), ")");
      }
      integrity.journal_torn_lines = parse_manifest(text, entries);
      if (integrity.journal_torn_lines > 0)
        report.issues.push_back({manifest_file_name(),
                                 std::to_string(integrity.journal_torn_lines) +
                                     " torn journal line(s) repaired"});
    }
    std::map<std::string, ManifestEntry> manifest;
    for (auto& entry : entries) manifest[entry.rel] = std::move(entry);
    integrity.journal_entries = manifest.size();

    bool changed = integrity.journal_torn_lines > 0;
    for (auto it = manifest.begin(); it != manifest.end();) {
      const auto found = disk.find(it->first);
      if (found == disk.end()) {
        if (!handled.count(it->first)) {
          ++integrity.missing_files;
          report.issues.push_back(
              {it->first, "journaled artifact missing on disk"});
          util::log_warn("fsck: journaled artifact missing: ", it->first);
        }
        it = manifest.erase(it);
        changed = true;
        continue;
      }
      std::string bytes;
      try {
        bytes = util::read_file(found->second);
      } catch (const std::exception&) {
        bytes.clear();
      }
      if (bytes.size() != it->second.size ||
          util::crc32(bytes) != it->second.crc) {
        quarantine_file(root_, found->second,
                        "size/crc mismatch against manifest journal", report);
        ++integrity.crc_mismatches;
        disk.erase(found);
        it = manifest.erase(it);
        changed = true;
        continue;
      }
      ++integrity.files_verified;
      disk.erase(found);
      ++it;
    }

    // Artifacts on disk the journal does not know: a crash between an
    // artifact commit and its journal append (framed — adopt and report),
    // or a legacy pre-framing tree (unframed — adopt silently).
    for (const auto& [rel, path] : disk) {
      std::string bytes;
      try {
        bytes = util::read_file(path);
      } catch (const std::exception&) {
        continue;
      }
      if (util::is_framed(bytes)) {
        ++integrity.unjournaled_adopted;
        report.issues.push_back({rel, "artifact missing from journal; adopted"});
        util::log_warn("fsck: adopted unjournaled artifact ", rel);
      } else {
        ++integrity.legacy_unframed;
      }
      ManifestEntry entry;
      entry.rel = rel;
      entry.size = bytes.size();
      entry.crc = util::crc32(bytes);
      manifest[rel] = std::move(entry);
      changed = true;
    }

    if (changed && (!manifest.empty() || have_journal)) {
      std::string text;
      for (const auto& [rel, entry] : manifest) {
        text += manifest_line(entry);
        text += '\n';
      }
      util::write_file(journal_path, text, util::Durability::kFsync);
      integrity.journal_rewritten = true;
    }
  }
  return report;
}

}  // namespace a4nn::lineage
