#include "lineage/tracker.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/fsutil.hpp"
#include "util/log.hpp"

namespace a4nn::lineage {

namespace fs = std::filesystem;

std::string model_dir_name(int model_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "model_%05d", model_id);
  return buf;
}

std::string snapshot_file_name(std::size_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "epoch_%04zu.ckpt.json", epoch);
  return buf;
}

std::string training_state_file_name(std::size_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "epoch_%04zu.state.json", epoch);
  return buf;
}

LineageTracker::LineageTracker(TrackerConfig config)
    : config_(std::move(config)) {
  if (config_.root.empty())
    throw std::invalid_argument("LineageTracker: empty root path");
  util::ensure_dir(config_.root);
  util::ensure_dir(config_.root / "models");
}

void LineageTracker::record_search_config(const util::Json& config) {
  if (sealed_.load()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  util::write_file(config_.root / "search.json", config.dump(2));
}

bool LineageTracker::wants_snapshot(std::size_t epoch) const {
  return config_.snapshot_every > 0 && epoch % config_.snapshot_every == 0;
}

fs::path LineageTracker::model_dir(int model_id) const {
  return config_.root / "models" / model_dir_name(model_id);
}

void LineageTracker::record_model_epoch(int model_id, std::size_t epoch,
                                        const nn::Model& model) {
  if (sealed_.load()) return;
  const util::Json ckpt = model.checkpoint();
  std::lock_guard<std::mutex> lock(mutex_);
  util::write_file(model_dir(model_id) / snapshot_file_name(epoch),
                   ckpt.dump());
}

void LineageTracker::record_training_state(int model_id, std::size_t epoch,
                                           const util::Json& state) {
  if (sealed_.load()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  util::write_file(model_dir(model_id) / training_state_file_name(epoch),
                   state.dump());
}

void LineageTracker::record_evaluation(const nas::EvaluationRecord& record) {
  if (sealed_.load()) return;
  const util::Json j = record.to_json();
  std::lock_guard<std::mutex> lock(mutex_);
  util::write_file(model_dir(record.model_id) / "record.json", j.dump(2));
}

DataCommons::DataCommons(fs::path root) : root_(std::move(root)) {
  if (!fs::exists(root_ / "models"))
    throw std::invalid_argument("DataCommons: " + root_.string() +
                                " is not a commons tree");
}

util::Json DataCommons::search_config() const {
  return util::Json::parse(util::read_file(root_ / "search.json"));
}

std::vector<int> DataCommons::model_ids() const {
  std::vector<int> ids;
  for (const auto& entry : fs::directory_iterator(root_ / "models")) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("model_", 0) != 0) continue;
    ids.push_back(std::atoi(name.c_str() + 6));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<nas::EvaluationRecord> DataCommons::load_records() const {
  std::vector<nas::EvaluationRecord> records;
  for (int id : model_ids()) {
    const fs::path path = root_ / "models" / model_dir_name(id) / "record.json";
    if (!fs::exists(path)) continue;
    records.push_back(nas::EvaluationRecord::from_json(
        util::Json::parse(util::read_file(path))));
  }
  return records;
}

namespace {

std::vector<std::size_t> epochs_with_suffix(const fs::path& dir,
                                            const std::string& suffix) {
  std::vector<std::size_t> epochs;
  for (const auto& file : util::list_files(dir)) {
    const std::string name = file.filename().string();
    if (name.rfind("epoch_", 0) != 0 || !name.ends_with(suffix)) continue;
    epochs.push_back(static_cast<std::size_t>(std::atoll(name.c_str() + 6)));
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

}  // namespace

std::vector<std::size_t> DataCommons::snapshot_epochs(int model_id) const {
  return epochs_with_suffix(root_ / "models" / model_dir_name(model_id),
                            ".ckpt.json");
}

std::vector<std::size_t> DataCommons::training_state_epochs(
    int model_id) const {
  return epochs_with_suffix(root_ / "models" / model_dir_name(model_id),
                            ".state.json");
}

nn::Model DataCommons::load_model(int model_id, std::size_t epoch) const {
  const fs::path path =
      root_ / "models" / model_dir_name(model_id) / snapshot_file_name(epoch);
  return nn::Model::from_checkpoint(
      util::Json::parse(util::read_file(path)));
}

util::Json DataCommons::load_training_state(int model_id,
                                            std::size_t epoch) const {
  const fs::path path = root_ / "models" / model_dir_name(model_id) /
                        training_state_file_name(epoch);
  return util::Json::parse(util::read_file(path));
}

namespace {

/// Move a corrupt file into <root>/quarantine/<relative path>, recording
/// the reason. Never throws: fsck must make progress past any breakage.
void quarantine_file(const fs::path& root, const fs::path& file,
                     const std::string& reason, FsckReport& report) {
  const fs::path rel = fs::relative(file, root);
  const fs::path target = root / "quarantine" / rel;
  std::error_code ec;
  fs::create_directories(target.parent_path(), ec);
  fs::rename(file, target, ec);
  if (ec) fs::remove(file, ec);  // cross-device or racing writer: drop it
  report.issues.push_back({rel, reason});
  ++report.files_quarantined;
  util::log_warn("fsck: quarantined ", rel.string(), " (", reason, ")");
}

}  // namespace

FsckReport DataCommons::fsck() {
  FsckReport report;

  // Leftover staging files from crashed writers anywhere in the tree.
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root_, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file()) continue;
    const std::string name = it->path().filename().string();
    if (name.find(".tmp") != std::string::npos) {
      std::error_code rm;
      fs::remove(it->path(), rm);
      if (!rm) ++report.tmp_files_removed;
    }
  }

  const fs::path search = root_ / "search.json";
  if (fs::exists(search)) {
    try {
      util::Json::parse(util::read_file(search));
    } catch (const std::exception& e) {
      quarantine_file(root_, search, e.what(), report);
    }
  }

  for (int id : model_ids()) {
    ++report.models_scanned;
    const fs::path dir = root_ / "models" / model_dir_name(id);

    const fs::path record = dir / "record.json";
    if (fs::exists(record)) {
      try {
        nas::EvaluationRecord::from_json(
            util::Json::parse(util::read_file(record)));
        ++report.records_valid;
      } catch (const std::exception& e) {
        quarantine_file(root_, record, e.what(), report);
      }
    }

    for (const auto& file : util::list_files(dir, ".json")) {
      const std::string name = file.filename().string();
      if (name.rfind("epoch_", 0) != 0) continue;
      try {
        const util::Json j = util::Json::parse(util::read_file(file));
        if (name.ends_with(".ckpt.json")) {
          if (!j.contains("spec") || !j.contains("weights") ||
              !j.contains("input_shape"))
            throw util::JsonError("checkpoint missing spec/weights");
        } else if (name.ends_with(".state.json")) {
          if (!j.contains("epoch") || !j.contains("rng") ||
              !j.contains("optimizer") || !j.contains("record"))
            throw util::JsonError("training state missing required fields");
        }
      } catch (const std::exception& e) {
        quarantine_file(root_, file, e.what(), report);
      }
    }
  }
  return report;
}

}  // namespace a4nn::lineage
