#include "lineage/tracker.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/fsutil.hpp"

namespace a4nn::lineage {

namespace fs = std::filesystem;

std::string model_dir_name(int model_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "model_%05d", model_id);
  return buf;
}

std::string snapshot_file_name(std::size_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "epoch_%04zu.ckpt.json", epoch);
  return buf;
}

LineageTracker::LineageTracker(TrackerConfig config)
    : config_(std::move(config)) {
  if (config_.root.empty())
    throw std::invalid_argument("LineageTracker: empty root path");
  util::ensure_dir(config_.root);
  util::ensure_dir(config_.root / "models");
}

void LineageTracker::record_search_config(const util::Json& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  util::write_file(config_.root / "search.json", config.dump(2));
}

bool LineageTracker::wants_snapshot(std::size_t epoch) const {
  return config_.snapshot_every > 0 && epoch % config_.snapshot_every == 0;
}

fs::path LineageTracker::model_dir(int model_id) const {
  return config_.root / "models" / model_dir_name(model_id);
}

void LineageTracker::record_model_epoch(int model_id, std::size_t epoch,
                                        const nn::Model& model) {
  const util::Json ckpt = model.checkpoint();
  std::lock_guard<std::mutex> lock(mutex_);
  util::write_file(model_dir(model_id) / snapshot_file_name(epoch),
                   ckpt.dump());
}

void LineageTracker::record_evaluation(const nas::EvaluationRecord& record) {
  const util::Json j = record.to_json();
  std::lock_guard<std::mutex> lock(mutex_);
  util::write_file(model_dir(record.model_id) / "record.json", j.dump(2));
}

DataCommons::DataCommons(fs::path root) : root_(std::move(root)) {
  if (!fs::exists(root_ / "models"))
    throw std::invalid_argument("DataCommons: " + root_.string() +
                                " is not a commons tree");
}

util::Json DataCommons::search_config() const {
  return util::Json::parse(util::read_file(root_ / "search.json"));
}

std::vector<int> DataCommons::model_ids() const {
  std::vector<int> ids;
  for (const auto& entry : fs::directory_iterator(root_ / "models")) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("model_", 0) != 0) continue;
    ids.push_back(std::atoi(name.c_str() + 6));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<nas::EvaluationRecord> DataCommons::load_records() const {
  std::vector<nas::EvaluationRecord> records;
  for (int id : model_ids()) {
    const fs::path path = root_ / "models" / model_dir_name(id) / "record.json";
    if (!fs::exists(path)) continue;
    records.push_back(nas::EvaluationRecord::from_json(
        util::Json::parse(util::read_file(path))));
  }
  return records;
}

std::vector<std::size_t> DataCommons::snapshot_epochs(int model_id) const {
  std::vector<std::size_t> epochs;
  const fs::path dir = root_ / "models" / model_dir_name(model_id);
  for (const auto& file : util::list_files(dir)) {
    const std::string name = file.filename().string();
    if (name.rfind("epoch_", 0) != 0) continue;
    epochs.push_back(static_cast<std::size_t>(std::atoll(name.c_str() + 6)));
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

nn::Model DataCommons::load_model(int model_id, std::size_t epoch) const {
  const fs::path path =
      root_ / "models" / model_dir_name(model_id) / snapshot_file_name(epoch);
  return nn::Model::from_checkpoint(
      util::Json::parse(util::read_file(path)));
}

}  // namespace a4nn::lineage
