// Lineage tracker: writes complete record trails — search configuration,
// per-network metadata (genome, architecture, fitness and prediction
// histories, timings, FLOPs) and optional per-epoch model snapshots — into
// a file-tree "data commons" that the analyzer loads back. This is the
// paper's Dataverse commons at laptop scale: every model can be reloaded
// and re-evaluated from any training epoch.
//
// Layout:
//   <root>/search.json                     search + engine + dataset config
//   <root>/models/model_00042/record.json  EvaluationRecord
//   <root>/models/model_00042/epoch_0007.ckpt.json  model snapshot (optional)
#pragma once

#include <atomic>
#include <filesystem>
#include <mutex>
#include <optional>

#include "nas/evaluator.hpp"
#include "nn/model.hpp"

namespace a4nn::lineage {

struct TrackerConfig {
  std::filesystem::path root;
  /// Snapshot model weights every N epochs (0 disables snapshots; 1
  /// matches the paper's "models after every training epoch").
  std::size_t snapshot_every = 0;
};

class LineageTracker {
 public:
  explicit LineageTracker(TrackerConfig config);

  /// Persist the experiment-level configuration document.
  void record_search_config(const util::Json& config);

  /// Persist a model snapshot for (model, epoch). Thread-safe.
  void record_model_epoch(int model_id, std::size_t epoch,
                          const nn::Model& model);

  /// Persist the final record trail of a trained network. Thread-safe.
  void record_evaluation(const nas::EvaluationRecord& record);

  /// Persist the full training state (optimizer, RNG, histories) captured
  /// after `epoch`, enabling bit-exact mid-training resume. Thread-safe.
  void record_training_state(int model_id, std::size_t epoch,
                             const util::Json& state);

  /// Whether a snapshot should be taken at this epoch.
  bool wants_snapshot(std::size_t epoch) const;

  /// Simulate process death: after sealing, every record_* call becomes a
  /// no-op. Used by the kill-and-resume tests to interrupt a run at job
  /// granularity without tearing down the process.
  void seal() { sealed_.store(true); }
  bool sealed() const { return sealed_.load(); }

  const std::filesystem::path& root() const { return config_.root; }

 private:
  std::filesystem::path model_dir(int model_id) const;

  TrackerConfig config_;
  std::mutex mutex_;
  std::atomic<bool> sealed_{false};
};

/// One problem found (and fixed) by DataCommons::fsck.
struct FsckIssue {
  std::filesystem::path path;
  std::string reason;
};

/// What fsck scanned, kept, and quarantined.
struct FsckReport {
  std::size_t models_scanned = 0;
  std::size_t records_valid = 0;
  std::size_t files_quarantined = 0;
  std::size_t tmp_files_removed = 0;
  std::vector<FsckIssue> issues;

  bool clean() const { return issues.empty() && tmp_files_removed == 0; }
};

/// Read-side API over a commons tree.
class DataCommons {
 public:
  explicit DataCommons(std::filesystem::path root);

  util::Json search_config() const;
  /// Every record trail in the commons, sorted by model id.
  std::vector<nas::EvaluationRecord> load_records() const;
  /// Model ids present in the commons.
  std::vector<int> model_ids() const;
  /// Epochs with weight snapshots for a model.
  std::vector<std::size_t> snapshot_epochs(int model_id) const;
  /// Epochs with training-state checkpoints for a model.
  std::vector<std::size_t> training_state_epochs(int model_id) const;
  /// Reload the model state captured after `epoch`.
  nn::Model load_model(int model_id, std::size_t epoch) const;
  /// Reload the training-state document captured after `epoch`.
  util::Json load_training_state(int model_id, std::size_t epoch) const;

  /// Validate the whole commons tree: every record trail, snapshot, and
  /// training-state file must parse; corrupt files are moved to
  /// `<root>/quarantine/` (preserving their relative layout) and leftover
  /// `.tmp` staging files from crashed writers are deleted, so one
  /// truncated JSON can no longer kill a resume. Returns what was dropped.
  FsckReport fsck();

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path root_;
};

/// Zero-padded directory/file naming shared by tracker and commons.
std::string model_dir_name(int model_id);
std::string snapshot_file_name(std::size_t epoch);
std::string training_state_file_name(std::size_t epoch);

}  // namespace a4nn::lineage
