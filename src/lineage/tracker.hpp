// Lineage tracker: writes complete record trails — search configuration,
// per-network metadata (genome, architecture, fitness and prediction
// histories, timings, FLOPs) and optional per-epoch model snapshots — into
// a file-tree "data commons" that the analyzer loads back. This is the
// paper's Dataverse commons at laptop scale: every model can be reloaded
// and re-evaluated from any training epoch.
//
// Every artifact is committed inside an integrity frame (util/frame.hpp:
// magic + version + length + CRC-32) and logged in an append-only manifest
// journal, so torn writes and bit rot are tamper-evident instead of being
// silently replayed into the search. Legacy unframed trees still load and
// are re-framed the first time they are rewritten.
//
// Layout:
//   <root>/search.json                     search + engine + dataset config
//   <root>/manifest.journal                {line-crc, artifact-crc, size, path}
//   <root>/models/model_00042/record.json  EvaluationRecord
//   <root>/models/model_00042/epoch_0007.ckpt.json  model snapshot (optional)
#pragma once

#include <atomic>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string_view>

#include "nas/evaluator.hpp"
#include "nn/model.hpp"
#include "util/fsutil.hpp"
#include "util/metrics.hpp"

namespace a4nn::lineage {

struct TrackerConfig {
  std::filesystem::path root;
  /// Snapshot model weights every N epochs (0 disables snapshots; 1
  /// matches the paper's "models after every training epoch").
  std::size_t snapshot_every = 0;
  /// Fsync manifest-journal commits and checkpoint/training-state writes
  /// so they survive a power cut, not just a process crash. Record trails
  /// stay buffered: they are cheap to retrain and always journaled.
  bool durable = true;
};

class LineageTracker {
 public:
  explicit LineageTracker(TrackerConfig config);

  /// Persist the experiment-level configuration document.
  void record_search_config(const util::Json& config);

  /// Persist an arbitrary run-level JSON artifact at `rel_path` (a plain
  /// file name relative to the commons root, e.g. "memo_index.json" or
  /// "table.json") under the same frame + manifest-journal discipline as
  /// every other artifact. Thread-safe.
  void record_artifact(const std::string& rel_path, const util::Json& doc);

  /// Persist a model snapshot for (model, epoch). Thread-safe.
  void record_model_epoch(int model_id, std::size_t epoch,
                          const nn::Model& model);

  /// Persist the final record trail of a trained network. Thread-safe.
  void record_evaluation(const nas::EvaluationRecord& record);

  /// Persist the full training state (optimizer, RNG, histories) captured
  /// after `epoch`, enabling bit-exact mid-training resume. Thread-safe.
  void record_training_state(int model_id, std::size_t epoch,
                             const util::Json& state);

  /// Whether a snapshot should be taken at this epoch.
  bool wants_snapshot(std::size_t epoch) const;

  /// Simulate process death: after sealing, every record_* call becomes a
  /// no-op. Used by the kill-and-resume tests to interrupt a run at job
  /// granularity without tearing down the process.
  void seal() { sealed_.store(true); }
  bool sealed() const { return sealed_.load(); }

  const std::filesystem::path& root() const { return config_.root; }

  /// Attach a metrics registry: journal commits, bytes written, and fsync
  /// time are counted there. Pass nullptr to detach; the registry must
  /// outlive the tracker.
  void set_metrics(util::metrics::Registry* registry) { metrics_ = registry; }

 private:
  std::filesystem::path model_dir(int model_id) const;
  /// Frame `payload`, commit it to `path`, and append a manifest-journal
  /// entry under an atomic journal rename. Caller holds mutex_.
  void commit_locked(const std::filesystem::path& path,
                     const std::string& payload, util::Durability durability);

  TrackerConfig config_;
  std::mutex mutex_;
  std::atomic<bool> sealed_{false};
  util::metrics::Registry* metrics_ = nullptr;
  /// In-memory image of the manifest journal (valid lines only), appended
  /// on every commit and rewritten to disk atomically.
  std::string journal_text_;
};

/// One problem found (and fixed) by DataCommons::fsck.
struct FsckIssue {
  std::filesystem::path path;
  std::string reason;
};

/// Checksum-level findings of a deep fsck pass.
struct IntegrityReport {
  /// Manifest entries read from the journal (after supersede).
  std::size_t journal_entries = 0;
  /// Malformed or torn journal lines dropped during repair.
  std::size_t journal_torn_lines = 0;
  /// Artifacts whose size and CRC matched their manifest entry.
  std::size_t files_verified = 0;
  /// Artifacts quarantined for a size or CRC mismatch against the manifest.
  std::size_t crc_mismatches = 0;
  /// Journaled artifacts absent on disk (entry dropped).
  std::size_t missing_files = 0;
  /// Valid framed artifacts that were on disk but not journaled (a crash
  /// between an artifact commit and its journal append); re-journaled.
  std::size_t unjournaled_adopted = 0;
  /// Legacy unframed artifacts accepted verbatim and journaled.
  std::size_t legacy_unframed = 0;
  /// Whether the journal was repaired/rewritten on disk.
  bool journal_rewritten = false;

  /// Legacy artifacts and journal creation are accepted states; anything
  /// torn, mismatched, missing, or unjournaled is an inconsistency.
  bool clean() const {
    return journal_torn_lines == 0 && crc_mismatches == 0 &&
           missing_files == 0 && unjournaled_adopted == 0;
  }
};

/// What fsck scanned, kept, and quarantined.
struct FsckReport {
  std::size_t models_scanned = 0;
  std::size_t records_valid = 0;
  std::size_t files_quarantined = 0;
  std::size_t tmp_files_removed = 0;
  std::vector<FsckIssue> issues;
  /// Populated by deep mode (all zeros after a quick pass).
  IntegrityReport integrity;
  /// Whether this report came from a deep pass.
  bool deep = false;

  bool clean() const {
    return issues.empty() && tmp_files_removed == 0 && integrity.clean();
  }
};

/// How thoroughly DataCommons::fsck validates the tree.
enum class FsckMode {
  /// Parse-level validation plus stale-tmp cleanup.
  kQuick,
  /// kQuick plus checksum verification of every manifest-journal entry:
  /// detects missing/extra/torn files, quarantines mismatches, repairs the
  /// journal, and fills FsckReport::integrity.
  kDeep,
};

/// Read-side API over a commons tree.
class DataCommons {
 public:
  explicit DataCommons(std::filesystem::path root);

  util::Json search_config() const;
  /// Every record trail in the commons, sorted by model id.
  std::vector<nas::EvaluationRecord> load_records() const;
  /// Model ids present in the commons.
  std::vector<int> model_ids() const;
  /// Epochs with weight snapshots for a model.
  std::vector<std::size_t> snapshot_epochs(int model_id) const;
  /// Epochs with training-state checkpoints for a model.
  std::vector<std::size_t> training_state_epochs(int model_id) const;
  /// Reload the model state captured after `epoch`.
  nn::Model load_model(int model_id, std::size_t epoch) const;
  /// Reload the training-state document captured after `epoch`.
  util::Json load_training_state(int model_id, std::size_t epoch) const;

  /// Reload a run-level artifact persisted via record_artifact.
  util::Json load_artifact(const std::string& rel_path) const;
  /// Whether a run-level artifact exists.
  bool has_artifact(const std::string& rel_path) const;

  /// Validate the whole commons tree: every record trail, snapshot, and
  /// training-state file must carry a valid frame (or be legacy unframed)
  /// and parse; corrupt files are moved to `<root>/quarantine/` (preserving
  /// their relative layout) and leftover `.tmp` staging files from crashed
  /// writers are deleted, so one truncated JSON can no longer kill a
  /// resume. FsckMode::kDeep additionally cross-checks every artifact
  /// against the manifest journal's size+CRC entries and repairs the
  /// journal. Returns what was dropped.
  FsckReport fsck(FsckMode mode = FsckMode::kQuick);

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path root_;
};

/// Zero-padded directory/file naming shared by tracker and commons.
std::string model_dir_name(int model_id);
std::string snapshot_file_name(std::size_t epoch);
std::string training_state_file_name(std::size_t epoch);
/// Name of the manifest journal inside the commons root.
std::string manifest_file_name();

/// Strictly parse `<prefix><digits><suffix>` names (e.g. "model_00042",
/// "epoch_0007.ckpt.json"). Returns nullopt — instead of atoi's silent 0 —
/// when the prefix/suffix do not match or the middle is not all digits, so
/// a stray `model_backup/` directory can never alias model 0.
std::optional<std::size_t> parse_indexed_name(std::string_view name,
                                              std::string_view prefix,
                                              std::string_view suffix);

/// Read an artifact file, verifying and stripping its integrity frame;
/// legacy unframed content is returned verbatim. Throws util::FrameError
/// on corruption and std::runtime_error when missing.
std::string read_artifact(const std::filesystem::path& path);

}  // namespace a4nn::lineage
