file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_functions.dir/bench_ablation_functions.cpp.o"
  "CMakeFiles/bench_ablation_functions.dir/bench_ablation_functions.cpp.o.d"
  "bench_ablation_functions"
  "bench_ablation_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
