
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_functions.cpp" "bench/CMakeFiles/bench_ablation_functions.dir/bench_ablation_functions.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_functions.dir/bench_ablation_functions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/a4nn_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/a4nn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/a4nn_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/orchestrator/CMakeFiles/a4nn_orchestrator.dir/DependInfo.cmake"
  "/root/repo/build/src/lineage/CMakeFiles/a4nn_lineage.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/a4nn_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/penguin/CMakeFiles/a4nn_penguin.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/a4nn_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/xfel/CMakeFiles/a4nn_xfel.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/a4nn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/a4nn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/a4nn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
