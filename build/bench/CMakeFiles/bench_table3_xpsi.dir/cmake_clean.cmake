file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_xpsi.dir/bench_table3_xpsi.cpp.o"
  "CMakeFiles/bench_table3_xpsi.dir/bench_table3_xpsi.cpp.o.d"
  "bench_table3_xpsi"
  "bench_table3_xpsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_xpsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
