# Empty dependencies file for bench_table3_xpsi.
# This may be replaced when dependencies are built.
