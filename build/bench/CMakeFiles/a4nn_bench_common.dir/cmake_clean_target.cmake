file(REMOVE_RECURSE
  "../lib/liba4nn_bench_common.a"
)
