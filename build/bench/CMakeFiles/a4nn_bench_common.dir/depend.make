# Empty dependencies file for a4nn_bench_common.
# This may be replaced when dependencies are built.
