file(REMOVE_RECURSE
  "../lib/liba4nn_bench_common.a"
  "../lib/liba4nn_bench_common.pdb"
  "CMakeFiles/a4nn_bench_common.dir/common.cpp.o"
  "CMakeFiles/a4nn_bench_common.dir/common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4nn_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
