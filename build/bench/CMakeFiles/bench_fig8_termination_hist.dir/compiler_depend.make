# Empty compiler generated dependencies file for bench_fig8_termination_hist.
# This may be replaced when dependencies are built.
