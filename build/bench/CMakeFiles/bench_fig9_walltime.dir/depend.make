# Empty dependencies file for bench_fig9_walltime.
# This may be replaced when dependencies are built.
