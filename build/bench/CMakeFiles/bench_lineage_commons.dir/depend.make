# Empty dependencies file for bench_lineage_commons.
# This may be replaced when dependencies are built.
