file(REMOVE_RECURSE
  "CMakeFiles/bench_lineage_commons.dir/bench_lineage_commons.cpp.o"
  "CMakeFiles/bench_lineage_commons.dir/bench_lineage_commons.cpp.o.d"
  "bench_lineage_commons"
  "bench_lineage_commons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lineage_commons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
