# Empty dependencies file for bench_fig7_epoch_savings.
# This may be replaced when dependencies are built.
