file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_engine.dir/bench_overhead_engine.cpp.o"
  "CMakeFiles/bench_overhead_engine.dir/bench_overhead_engine.cpp.o.d"
  "bench_overhead_engine"
  "bench_overhead_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
