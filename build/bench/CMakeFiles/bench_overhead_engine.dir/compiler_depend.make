# Empty compiler generated dependencies file for bench_overhead_engine.
# This may be replaced when dependencies are built.
