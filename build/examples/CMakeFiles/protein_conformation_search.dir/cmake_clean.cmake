file(REMOVE_RECURSE
  "CMakeFiles/protein_conformation_search.dir/protein_conformation_search.cpp.o"
  "CMakeFiles/protein_conformation_search.dir/protein_conformation_search.cpp.o.d"
  "protein_conformation_search"
  "protein_conformation_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_conformation_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
