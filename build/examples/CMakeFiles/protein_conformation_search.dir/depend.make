# Empty dependencies file for protein_conformation_search.
# This may be replaced when dependencies are built.
