file(REMOVE_RECURSE
  "CMakeFiles/a4nn_run.dir/a4nn_run.cpp.o"
  "CMakeFiles/a4nn_run.dir/a4nn_run.cpp.o.d"
  "a4nn_run"
  "a4nn_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4nn_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
