# Empty dependencies file for a4nn_run.
# This may be replaced when dependencies are built.
