file(REMOVE_RECURSE
  "CMakeFiles/custom_dataset_search.dir/custom_dataset_search.cpp.o"
  "CMakeFiles/custom_dataset_search.dir/custom_dataset_search.cpp.o.d"
  "custom_dataset_search"
  "custom_dataset_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_dataset_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
