# Empty compiler generated dependencies file for custom_dataset_search.
# This may be replaced when dependencies are built.
