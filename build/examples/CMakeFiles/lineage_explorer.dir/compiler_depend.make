# Empty compiler generated dependencies file for lineage_explorer.
# This may be replaced when dependencies are built.
