file(REMOVE_RECURSE
  "CMakeFiles/lineage_explorer.dir/lineage_explorer.cpp.o"
  "CMakeFiles/lineage_explorer.dir/lineage_explorer.cpp.o.d"
  "lineage_explorer"
  "lineage_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lineage_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
