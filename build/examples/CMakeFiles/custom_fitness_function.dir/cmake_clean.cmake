file(REMOVE_RECURSE
  "CMakeFiles/custom_fitness_function.dir/custom_fitness_function.cpp.o"
  "CMakeFiles/custom_fitness_function.dir/custom_fitness_function.cpp.o.d"
  "custom_fitness_function"
  "custom_fitness_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_fitness_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
