# Empty dependencies file for custom_fitness_function.
# This may be replaced when dependencies are built.
