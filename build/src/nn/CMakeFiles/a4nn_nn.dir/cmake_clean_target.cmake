file(REMOVE_RECURSE
  "liba4nn_nn.a"
)
