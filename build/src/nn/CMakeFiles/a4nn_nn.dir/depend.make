# Empty dependencies file for a4nn_nn.
# This may be replaced when dependencies are built.
