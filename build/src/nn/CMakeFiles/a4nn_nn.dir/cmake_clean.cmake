file(REMOVE_RECURSE
  "CMakeFiles/a4nn_nn.dir/dataset.cpp.o"
  "CMakeFiles/a4nn_nn.dir/dataset.cpp.o.d"
  "CMakeFiles/a4nn_nn.dir/factory.cpp.o"
  "CMakeFiles/a4nn_nn.dir/factory.cpp.o.d"
  "CMakeFiles/a4nn_nn.dir/layers.cpp.o"
  "CMakeFiles/a4nn_nn.dir/layers.cpp.o.d"
  "CMakeFiles/a4nn_nn.dir/layers_extra.cpp.o"
  "CMakeFiles/a4nn_nn.dir/layers_extra.cpp.o.d"
  "CMakeFiles/a4nn_nn.dir/loss.cpp.o"
  "CMakeFiles/a4nn_nn.dir/loss.cpp.o.d"
  "CMakeFiles/a4nn_nn.dir/model.cpp.o"
  "CMakeFiles/a4nn_nn.dir/model.cpp.o.d"
  "CMakeFiles/a4nn_nn.dir/optimizer.cpp.o"
  "CMakeFiles/a4nn_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/a4nn_nn.dir/phase_block.cpp.o"
  "CMakeFiles/a4nn_nn.dir/phase_block.cpp.o.d"
  "CMakeFiles/a4nn_nn.dir/sequential.cpp.o"
  "CMakeFiles/a4nn_nn.dir/sequential.cpp.o.d"
  "liba4nn_nn.a"
  "liba4nn_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4nn_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
