
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/dataset.cpp" "src/nn/CMakeFiles/a4nn_nn.dir/dataset.cpp.o" "gcc" "src/nn/CMakeFiles/a4nn_nn.dir/dataset.cpp.o.d"
  "/root/repo/src/nn/factory.cpp" "src/nn/CMakeFiles/a4nn_nn.dir/factory.cpp.o" "gcc" "src/nn/CMakeFiles/a4nn_nn.dir/factory.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/a4nn_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/a4nn_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/layers_extra.cpp" "src/nn/CMakeFiles/a4nn_nn.dir/layers_extra.cpp.o" "gcc" "src/nn/CMakeFiles/a4nn_nn.dir/layers_extra.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/a4nn_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/a4nn_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/a4nn_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/a4nn_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/a4nn_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/a4nn_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/phase_block.cpp" "src/nn/CMakeFiles/a4nn_nn.dir/phase_block.cpp.o" "gcc" "src/nn/CMakeFiles/a4nn_nn.dir/phase_block.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/a4nn_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/a4nn_nn.dir/sequential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/a4nn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/a4nn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
