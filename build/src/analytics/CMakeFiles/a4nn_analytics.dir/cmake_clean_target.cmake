file(REMOVE_RECURSE
  "liba4nn_analytics.a"
)
