file(REMOVE_RECURSE
  "CMakeFiles/a4nn_analytics.dir/analyzer.cpp.o"
  "CMakeFiles/a4nn_analytics.dir/analyzer.cpp.o.d"
  "CMakeFiles/a4nn_analytics.dir/dot_export.cpp.o"
  "CMakeFiles/a4nn_analytics.dir/dot_export.cpp.o.d"
  "liba4nn_analytics.a"
  "liba4nn_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4nn_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
