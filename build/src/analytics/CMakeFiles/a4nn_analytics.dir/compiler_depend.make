# Empty compiler generated dependencies file for a4nn_analytics.
# This may be replaced when dependencies are built.
