# Empty dependencies file for a4nn_xfel.
# This may be replaced when dependencies are built.
