file(REMOVE_RECURSE
  "liba4nn_xfel.a"
)
