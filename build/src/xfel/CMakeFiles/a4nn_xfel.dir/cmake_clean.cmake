file(REMOVE_RECURSE
  "CMakeFiles/a4nn_xfel.dir/dataset.cpp.o"
  "CMakeFiles/a4nn_xfel.dir/dataset.cpp.o.d"
  "CMakeFiles/a4nn_xfel.dir/diffraction.cpp.o"
  "CMakeFiles/a4nn_xfel.dir/diffraction.cpp.o.d"
  "CMakeFiles/a4nn_xfel.dir/protein.cpp.o"
  "CMakeFiles/a4nn_xfel.dir/protein.cpp.o.d"
  "CMakeFiles/a4nn_xfel.dir/shapes_dataset.cpp.o"
  "CMakeFiles/a4nn_xfel.dir/shapes_dataset.cpp.o.d"
  "liba4nn_xfel.a"
  "liba4nn_xfel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4nn_xfel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
