file(REMOVE_RECURSE
  "CMakeFiles/a4nn_penguin.dir/curve_fit.cpp.o"
  "CMakeFiles/a4nn_penguin.dir/curve_fit.cpp.o.d"
  "CMakeFiles/a4nn_penguin.dir/engine.cpp.o"
  "CMakeFiles/a4nn_penguin.dir/engine.cpp.o.d"
  "CMakeFiles/a4nn_penguin.dir/ensemble.cpp.o"
  "CMakeFiles/a4nn_penguin.dir/ensemble.cpp.o.d"
  "CMakeFiles/a4nn_penguin.dir/families_extra.cpp.o"
  "CMakeFiles/a4nn_penguin.dir/families_extra.cpp.o.d"
  "CMakeFiles/a4nn_penguin.dir/parametric.cpp.o"
  "CMakeFiles/a4nn_penguin.dir/parametric.cpp.o.d"
  "liba4nn_penguin.a"
  "liba4nn_penguin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4nn_penguin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
