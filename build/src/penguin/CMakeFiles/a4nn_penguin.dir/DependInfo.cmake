
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/penguin/curve_fit.cpp" "src/penguin/CMakeFiles/a4nn_penguin.dir/curve_fit.cpp.o" "gcc" "src/penguin/CMakeFiles/a4nn_penguin.dir/curve_fit.cpp.o.d"
  "/root/repo/src/penguin/engine.cpp" "src/penguin/CMakeFiles/a4nn_penguin.dir/engine.cpp.o" "gcc" "src/penguin/CMakeFiles/a4nn_penguin.dir/engine.cpp.o.d"
  "/root/repo/src/penguin/ensemble.cpp" "src/penguin/CMakeFiles/a4nn_penguin.dir/ensemble.cpp.o" "gcc" "src/penguin/CMakeFiles/a4nn_penguin.dir/ensemble.cpp.o.d"
  "/root/repo/src/penguin/families_extra.cpp" "src/penguin/CMakeFiles/a4nn_penguin.dir/families_extra.cpp.o" "gcc" "src/penguin/CMakeFiles/a4nn_penguin.dir/families_extra.cpp.o.d"
  "/root/repo/src/penguin/parametric.cpp" "src/penguin/CMakeFiles/a4nn_penguin.dir/parametric.cpp.o" "gcc" "src/penguin/CMakeFiles/a4nn_penguin.dir/parametric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/a4nn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
