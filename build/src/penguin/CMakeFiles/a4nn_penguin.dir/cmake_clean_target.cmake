file(REMOVE_RECURSE
  "liba4nn_penguin.a"
)
