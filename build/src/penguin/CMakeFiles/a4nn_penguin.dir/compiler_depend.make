# Empty compiler generated dependencies file for a4nn_penguin.
# This may be replaced when dependencies are built.
