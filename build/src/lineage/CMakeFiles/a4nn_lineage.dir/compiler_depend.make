# Empty compiler generated dependencies file for a4nn_lineage.
# This may be replaced when dependencies are built.
