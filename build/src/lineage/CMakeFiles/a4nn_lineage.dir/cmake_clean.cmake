file(REMOVE_RECURSE
  "CMakeFiles/a4nn_lineage.dir/tracker.cpp.o"
  "CMakeFiles/a4nn_lineage.dir/tracker.cpp.o.d"
  "liba4nn_lineage.a"
  "liba4nn_lineage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4nn_lineage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
