
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lineage/tracker.cpp" "src/lineage/CMakeFiles/a4nn_lineage.dir/tracker.cpp.o" "gcc" "src/lineage/CMakeFiles/a4nn_lineage.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nas/CMakeFiles/a4nn_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/a4nn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/a4nn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/a4nn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
