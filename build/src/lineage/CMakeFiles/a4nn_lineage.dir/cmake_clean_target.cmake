file(REMOVE_RECURSE
  "liba4nn_lineage.a"
)
