file(REMOVE_RECURSE
  "CMakeFiles/a4nn_xpsi.dir/xpsi.cpp.o"
  "CMakeFiles/a4nn_xpsi.dir/xpsi.cpp.o.d"
  "liba4nn_xpsi.a"
  "liba4nn_xpsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4nn_xpsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
