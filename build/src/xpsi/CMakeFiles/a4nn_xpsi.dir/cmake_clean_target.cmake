file(REMOVE_RECURSE
  "liba4nn_xpsi.a"
)
