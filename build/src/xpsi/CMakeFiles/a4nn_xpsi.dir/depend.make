# Empty dependencies file for a4nn_xpsi.
# This may be replaced when dependencies are built.
