file(REMOVE_RECURSE
  "CMakeFiles/a4nn_tensor.dir/ops.cpp.o"
  "CMakeFiles/a4nn_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/a4nn_tensor.dir/tensor.cpp.o"
  "CMakeFiles/a4nn_tensor.dir/tensor.cpp.o.d"
  "liba4nn_tensor.a"
  "liba4nn_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4nn_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
