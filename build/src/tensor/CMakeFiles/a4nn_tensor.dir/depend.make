# Empty dependencies file for a4nn_tensor.
# This may be replaced when dependencies are built.
