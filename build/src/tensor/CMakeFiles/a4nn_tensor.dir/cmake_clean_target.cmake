file(REMOVE_RECURSE
  "liba4nn_tensor.a"
)
