file(REMOVE_RECURSE
  "liba4nn_core.a"
)
