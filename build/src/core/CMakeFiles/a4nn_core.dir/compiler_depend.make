# Empty compiler generated dependencies file for a4nn_core.
# This may be replaced when dependencies are built.
