file(REMOVE_RECURSE
  "CMakeFiles/a4nn_core.dir/a4nn.cpp.o"
  "CMakeFiles/a4nn_core.dir/a4nn.cpp.o.d"
  "liba4nn_core.a"
  "liba4nn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4nn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
