file(REMOVE_RECURSE
  "liba4nn_nas.a"
)
