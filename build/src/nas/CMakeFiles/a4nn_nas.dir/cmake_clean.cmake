file(REMOVE_RECURSE
  "CMakeFiles/a4nn_nas.dir/evaluator.cpp.o"
  "CMakeFiles/a4nn_nas.dir/evaluator.cpp.o.d"
  "CMakeFiles/a4nn_nas.dir/genome.cpp.o"
  "CMakeFiles/a4nn_nas.dir/genome.cpp.o.d"
  "CMakeFiles/a4nn_nas.dir/nsga2.cpp.o"
  "CMakeFiles/a4nn_nas.dir/nsga2.cpp.o.d"
  "CMakeFiles/a4nn_nas.dir/operators.cpp.o"
  "CMakeFiles/a4nn_nas.dir/operators.cpp.o.d"
  "CMakeFiles/a4nn_nas.dir/search.cpp.o"
  "CMakeFiles/a4nn_nas.dir/search.cpp.o.d"
  "CMakeFiles/a4nn_nas.dir/search_space.cpp.o"
  "CMakeFiles/a4nn_nas.dir/search_space.cpp.o.d"
  "liba4nn_nas.a"
  "liba4nn_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4nn_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
