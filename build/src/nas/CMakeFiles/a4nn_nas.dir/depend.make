# Empty dependencies file for a4nn_nas.
# This may be replaced when dependencies are built.
