
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nas/evaluator.cpp" "src/nas/CMakeFiles/a4nn_nas.dir/evaluator.cpp.o" "gcc" "src/nas/CMakeFiles/a4nn_nas.dir/evaluator.cpp.o.d"
  "/root/repo/src/nas/genome.cpp" "src/nas/CMakeFiles/a4nn_nas.dir/genome.cpp.o" "gcc" "src/nas/CMakeFiles/a4nn_nas.dir/genome.cpp.o.d"
  "/root/repo/src/nas/nsga2.cpp" "src/nas/CMakeFiles/a4nn_nas.dir/nsga2.cpp.o" "gcc" "src/nas/CMakeFiles/a4nn_nas.dir/nsga2.cpp.o.d"
  "/root/repo/src/nas/operators.cpp" "src/nas/CMakeFiles/a4nn_nas.dir/operators.cpp.o" "gcc" "src/nas/CMakeFiles/a4nn_nas.dir/operators.cpp.o.d"
  "/root/repo/src/nas/search.cpp" "src/nas/CMakeFiles/a4nn_nas.dir/search.cpp.o" "gcc" "src/nas/CMakeFiles/a4nn_nas.dir/search.cpp.o.d"
  "/root/repo/src/nas/search_space.cpp" "src/nas/CMakeFiles/a4nn_nas.dir/search_space.cpp.o" "gcc" "src/nas/CMakeFiles/a4nn_nas.dir/search_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/a4nn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/a4nn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/a4nn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
