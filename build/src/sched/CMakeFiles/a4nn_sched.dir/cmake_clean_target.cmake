file(REMOVE_RECURSE
  "liba4nn_sched.a"
)
