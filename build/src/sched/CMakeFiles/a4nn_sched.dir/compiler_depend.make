# Empty compiler generated dependencies file for a4nn_sched.
# This may be replaced when dependencies are built.
