file(REMOVE_RECURSE
  "CMakeFiles/a4nn_sched.dir/resource_manager.cpp.o"
  "CMakeFiles/a4nn_sched.dir/resource_manager.cpp.o.d"
  "liba4nn_sched.a"
  "liba4nn_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4nn_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
