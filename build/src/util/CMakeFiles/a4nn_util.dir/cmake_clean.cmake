file(REMOVE_RECURSE
  "CMakeFiles/a4nn_util.dir/args.cpp.o"
  "CMakeFiles/a4nn_util.dir/args.cpp.o.d"
  "CMakeFiles/a4nn_util.dir/csv.cpp.o"
  "CMakeFiles/a4nn_util.dir/csv.cpp.o.d"
  "CMakeFiles/a4nn_util.dir/fsutil.cpp.o"
  "CMakeFiles/a4nn_util.dir/fsutil.cpp.o.d"
  "CMakeFiles/a4nn_util.dir/json.cpp.o"
  "CMakeFiles/a4nn_util.dir/json.cpp.o.d"
  "CMakeFiles/a4nn_util.dir/log.cpp.o"
  "CMakeFiles/a4nn_util.dir/log.cpp.o.d"
  "CMakeFiles/a4nn_util.dir/rng.cpp.o"
  "CMakeFiles/a4nn_util.dir/rng.cpp.o.d"
  "CMakeFiles/a4nn_util.dir/stats.cpp.o"
  "CMakeFiles/a4nn_util.dir/stats.cpp.o.d"
  "CMakeFiles/a4nn_util.dir/table.cpp.o"
  "CMakeFiles/a4nn_util.dir/table.cpp.o.d"
  "CMakeFiles/a4nn_util.dir/thread_pool.cpp.o"
  "CMakeFiles/a4nn_util.dir/thread_pool.cpp.o.d"
  "liba4nn_util.a"
  "liba4nn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4nn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
