# Empty dependencies file for a4nn_util.
# This may be replaced when dependencies are built.
