file(REMOVE_RECURSE
  "liba4nn_util.a"
)
