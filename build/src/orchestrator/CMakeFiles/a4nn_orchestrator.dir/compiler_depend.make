# Empty compiler generated dependencies file for a4nn_orchestrator.
# This may be replaced when dependencies are built.
