file(REMOVE_RECURSE
  "CMakeFiles/a4nn_orchestrator.dir/training_loop.cpp.o"
  "CMakeFiles/a4nn_orchestrator.dir/training_loop.cpp.o.d"
  "CMakeFiles/a4nn_orchestrator.dir/workflow_evaluator.cpp.o"
  "CMakeFiles/a4nn_orchestrator.dir/workflow_evaluator.cpp.o.d"
  "liba4nn_orchestrator.a"
  "liba4nn_orchestrator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4nn_orchestrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
