file(REMOVE_RECURSE
  "liba4nn_orchestrator.a"
)
