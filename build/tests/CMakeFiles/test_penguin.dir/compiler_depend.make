# Empty compiler generated dependencies file for test_penguin.
# This may be replaced when dependencies are built.
