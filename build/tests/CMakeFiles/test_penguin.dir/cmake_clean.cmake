file(REMOVE_RECURSE
  "CMakeFiles/test_penguin.dir/test_penguin.cpp.o"
  "CMakeFiles/test_penguin.dir/test_penguin.cpp.o.d"
  "test_penguin"
  "test_penguin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_penguin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
