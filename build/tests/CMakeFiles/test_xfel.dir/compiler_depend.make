# Empty compiler generated dependencies file for test_xfel.
# This may be replaced when dependencies are built.
