file(REMOVE_RECURSE
  "CMakeFiles/test_xfel.dir/test_xfel.cpp.o"
  "CMakeFiles/test_xfel.dir/test_xfel.cpp.o.d"
  "test_xfel"
  "test_xfel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xfel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
