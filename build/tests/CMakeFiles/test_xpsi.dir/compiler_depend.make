# Empty compiler generated dependencies file for test_xpsi.
# This may be replaced when dependencies are built.
