file(REMOVE_RECURSE
  "CMakeFiles/test_xpsi.dir/test_xpsi.cpp.o"
  "CMakeFiles/test_xpsi.dir/test_xpsi.cpp.o.d"
  "test_xpsi"
  "test_xpsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xpsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
