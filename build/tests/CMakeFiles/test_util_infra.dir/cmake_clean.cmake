file(REMOVE_RECURSE
  "CMakeFiles/test_util_infra.dir/test_util_infra.cpp.o"
  "CMakeFiles/test_util_infra.dir/test_util_infra.cpp.o.d"
  "test_util_infra"
  "test_util_infra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_infra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
