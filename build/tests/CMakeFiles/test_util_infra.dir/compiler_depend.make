# Empty compiler generated dependencies file for test_util_infra.
# This may be replaced when dependencies are built.
