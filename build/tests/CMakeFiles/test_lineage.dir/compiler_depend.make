# Empty compiler generated dependencies file for test_lineage.
# This may be replaced when dependencies are built.
