file(REMOVE_RECURSE
  "CMakeFiles/test_lineage.dir/test_lineage.cpp.o"
  "CMakeFiles/test_lineage.dir/test_lineage.cpp.o.d"
  "test_lineage"
  "test_lineage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lineage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
