
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_orchestrator.cpp" "tests/CMakeFiles/test_orchestrator.dir/test_orchestrator.cpp.o" "gcc" "tests/CMakeFiles/test_orchestrator.dir/test_orchestrator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/orchestrator/CMakeFiles/a4nn_orchestrator.dir/DependInfo.cmake"
  "/root/repo/build/src/xfel/CMakeFiles/a4nn_xfel.dir/DependInfo.cmake"
  "/root/repo/build/src/penguin/CMakeFiles/a4nn_penguin.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/a4nn_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/lineage/CMakeFiles/a4nn_lineage.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/a4nn_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/a4nn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/a4nn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/a4nn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
