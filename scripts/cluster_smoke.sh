#!/usr/bin/env bash
# Loopback cluster smoke test: a master with two workers on 127.0.0.1, one
# worker SIGKILLed mid-generation, must finish the search and produce a
# Pareto front BIT-identical (hexfloat dump) to the same binary run with
# zero workers (pure local fallback = the solo path). Exercises dispatch,
# heartbeat-loss detection, re-dispatch, and the degraded mode in one go.
#
# Usage: cluster_smoke.sh <path-to-a4nn_cluster-binary> [workdir]
set -euo pipefail

BIN=${1:?usage: cluster_smoke.sh <a4nn_cluster binary> [workdir]}
WORK=${2:-$(mktemp -d)}
mkdir -p "$WORK"

# Calibrated so the solo run takes a few seconds: long enough that the
# mid-run SIGKILL lands while jobs are in flight, short enough for CI.
FLAGS=(--population 4 --offspring 4 --generations 3 --epochs 6
       --images 80 --pixels 12 --intensity medium --no-engine
       --gpus 2 --seed 7)
PORT=7517
KILL_AFTER_S=2.2

echo "=== solo baseline (zero workers -> local fallback) ==="
"$BIN" --master --port 0 "${FLAGS[@]}" \
    --pareto-out "$WORK/solo.pareto" | tail -n 6

echo "=== cluster run: master + 2 workers, one SIGKILLed mid-run ==="
"$BIN" --master --port "$PORT" --min-workers 2 --wait-workers-ms 15000 \
    --heartbeat-interval-ms 100 --heartbeat-timeout-ms 500 \
    "${FLAGS[@]}" \
    --pareto-out "$WORK/cluster.pareto" \
    --trace-out "$WORK/cluster_trace.json" > "$WORK/master.log" 2>&1 &
MASTER_PID=$!

sleep 0.3
"$BIN" --worker --connect "127.0.0.1:$PORT" --worker-name w0 \
    "${FLAGS[@]}" > "$WORK/w0.log" 2>&1 &
W0_PID=$!
"$BIN" --worker --connect "127.0.0.1:$PORT" --worker-name w1 \
    "${FLAGS[@]}" > "$WORK/w1.log" 2>&1 &
W1_PID=$!

cleanup() { kill -9 "$MASTER_PID" "$W0_PID" "$W1_PID" 2>/dev/null || true; }
trap cleanup EXIT

# SIGKILL one worker while its jobs are in flight: the master must detect
# the silence, re-dispatch, and still finish bit-identically.
sleep "$KILL_AFTER_S"
if kill -9 "$W0_PID" 2>/dev/null; then
    echo "killed worker w0 (pid $W0_PID) after ${KILL_AFTER_S}s"
else
    echo "WARNING: worker w0 already exited before the kill" >&2
fi

if ! wait "$MASTER_PID"; then
    echo "FAIL: master exited nonzero" >&2
    tail -n 30 "$WORK/master.log" >&2
    exit 1
fi
wait "$W1_PID" || true
trap - EXIT
cleanup

grep -E "^cluster:" "$WORK/master.log" || true

echo "=== comparing Pareto fronts (must be bit-identical) ==="
if ! diff -u "$WORK/solo.pareto" "$WORK/cluster.pareto"; then
    echo "FAIL: cluster Pareto front differs from the solo baseline" >&2
    exit 1
fi
echo "PARETO BIT-IDENTICAL ($(wc -l < "$WORK/solo.pareto") model(s))"

# The trace's pid-3 lanes must agree with the cluster counters exactly.
if command -v python3 > /dev/null; then
    python3 "$(dirname "$0")/check_trace.py" "$WORK/cluster_trace.json"
fi

echo "cluster_smoke: PASS (artifacts in $WORK)"
