#!/usr/bin/env python3
"""Plot the paper's figures from the CSV series the benches write.

Every bench binary saves its data under bench_artifacts/*.csv; this script
turns them into matplotlib figures mirroring the paper's Figures 6-9.

Usage:
    python3 scripts/plot_results.py [bench_artifacts_dir] [--out plots/]
"""
import argparse
import csv
import sys
from collections import defaultdict
from pathlib import Path

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover
    print("matplotlib is required: pip install matplotlib", file=sys.stderr)
    sys.exit(1)

MARKERS = {"low": "o", "medium": "s", "high": "^"}


def read_csv(path: Path):
    with path.open() as f:
        return list(csv.DictReader(f))


def plot_fig6(artifacts: Path, out: Path) -> None:
    rows = read_csv(artifacts / "fig6_pareto.csv")
    fig, axes = plt.subplots(1, 2, figsize=(10, 4), sharey=True)
    for ax, variant, title in ((axes[0], "a4nn", "(a) A4NN"),
                               (axes[1], "standalone", "(b) NSGA-Net")):
        for intensity, marker in MARKERS.items():
            xs = [float(r["flops"]) for r in rows
                  if r["variant"] == variant and r["intensity"] == intensity]
            ys = [float(r["accuracy"]) for r in rows
                  if r["variant"] == variant and r["intensity"] == intensity]
            ax.scatter(xs, ys, marker=marker, label=intensity)
        ax.set_title(title)
        ax.set_xlabel("FLOPs / image")
        ax.legend(title="beam intensity")
    axes[0].set_ylabel("validation accuracy (%)")
    fig.suptitle("Figure 6: Pareto-optimal models")
    fig.tight_layout()
    fig.savefig(out / "fig6_pareto.png", dpi=150)


def plot_fig7(artifacts: Path, out: Path) -> None:
    rows = read_csv(artifacts / "fig7_epoch_savings.csv")
    groups = defaultdict(list)
    for r in rows:
        groups[r["intensity"]].append(r)
    fig, ax = plt.subplots(figsize=(8, 4))
    intensities = list(MARKERS)
    variants = [r["variant"] for r in groups[intensities[0]]]
    width = 0.8 / len(variants)
    for vi, variant in enumerate(variants):
        xs = [i + vi * width for i in range(len(intensities))]
        ys = [next(float(r["epochs"]) for r in groups[inten]
                   if r["variant"] == variant) for inten in intensities]
        ax.bar(xs, ys, width=width, label=variant)
    ax.set_xticks([i + width for i in range(len(intensities))])
    ax.set_xticklabels(intensities)
    ax.set_ylabel("training epochs")
    ax.set_title("Figure 7: epochs required per search")
    ax.legend()
    fig.tight_layout()
    fig.savefig(out / "fig7_epochs.png", dpi=150)


def plot_fig8(artifacts: Path, out: Path) -> None:
    rows = read_csv(artifacts / "fig8_termination.csv")
    fig, axes = plt.subplots(1, 3, figsize=(12, 3.5), sharey=True)
    for ax, intensity in zip(axes, MARKERS):
        values = [float(r["e_t"]) for r in rows
                  if r["intensity"] == intensity]
        ax.hist(values, bins=range(1, 27), edgecolor="black")
        ax.set_title(f"{intensity} intensity")
        ax.set_xlabel("termination epoch e_t")
    axes[0].set_ylabel("networks")
    fig.suptitle("Figure 8: e_t distributions (A4NN)")
    fig.tight_layout()
    fig.savefig(out / "fig8_termination.png", dpi=150)


def plot_fig9(artifacts: Path, out: Path) -> None:
    rows = read_csv(artifacts / "fig9_walltime.csv")
    groups = defaultdict(list)
    for r in rows:
        groups[r["intensity"]].append(r)
    fig, ax = plt.subplots(figsize=(8, 4))
    intensities = list(MARKERS)
    variants = [r["variant"] for r in groups[intensities[0]]]
    width = 0.8 / len(variants)
    for vi, variant in enumerate(variants):
        xs = [i + vi * width for i in range(len(intensities))]
        ys = [next(float(r["wall_hours"]) for r in groups[inten]
                   if r["variant"] == variant) for inten in intensities]
        ax.bar(xs, ys, width=width, label=variant)
    ax.set_xticks([i + width for i in range(len(intensities))])
    ax.set_xticklabels(intensities)
    ax.set_ylabel("wall time (h, virtual devices)")
    ax.set_title("Figure 9: wall time per search")
    ax.legend()
    fig.tight_layout()
    fig.savefig(out / "fig9_walltime.png", dpi=150)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifacts", nargs="?", type=Path,
                        default=Path("bench_artifacts"))
    parser.add_argument("--out", type=Path, default=Path("plots"))
    args = parser.parse_args()
    args.out.mkdir(parents=True, exist_ok=True)
    for fn in (plot_fig6, plot_fig7, plot_fig8, plot_fig9):
        try:
            fn(args.artifacts, args.out)
        except FileNotFoundError as e:
            print(f"skipping {fn.__name__}: {e}", file=sys.stderr)
    print(f"plots written to {args.out}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
