#!/usr/bin/env python3
"""Load an A4NN data commons into pandas DataFrames.

The paper's Dataverse commons ships with "a Python script demonstrating
how to load the data into a Pandas DataFrame and calculate and save
metrics of interest"; this is that script for the C++ reproduction's
commons layout (see src/lineage/tracker.hpp):

    <root>/search.json
    <root>/models/model_00042/record.json
    <root>/models/model_00042/epoch_0007.ckpt.json

Usage:
    python3 scripts/load_commons.py <commons_dir> [--out metrics.csv]

Produces one row per network with its genome key, fitness, FLOPs, epoch
counts and timings, prints summary metrics (mean accuracy, epoch savings,
early-termination share), and optionally saves the table as CSV.
"""
import argparse
import json
import sys
from pathlib import Path

try:
    import pandas as pd
except ImportError:  # pragma: no cover - pandas is optional
    pd = None


def genome_key(genome: dict) -> str:
    parts = []
    for phase in genome["phases"]:
        bits = "".join("1" if b else "0" for b in phase["bits"])
        bits += "S" if phase["skip"] else "s"
        for op in phase.get("node_ops", []):
            bits += chr(ord("a") + int(op))
        parts.append(bits)
    return "|".join(parts)


def load_records(root: Path) -> list:
    rows = []
    for record_path in sorted(root.glob("models/model_*/record.json")):
        r = json.loads(record_path.read_text())
        rows.append(
            {
                "model_id": int(r["model_id"]),
                "generation": int(r["generation"]),
                "genome": genome_key(r["genome"]),
                "fitness": r["fitness"],
                "measured_fitness": r["measured_fitness"],
                "flops": int(r["flops"]),
                "parameters": int(r["parameters"]),
                "epochs_trained": int(r["epochs_trained"]),
                "max_epochs": int(r["max_epochs"]),
                "early_terminated": bool(r["early_terminated"]),
                "virtual_seconds": r["virtual_seconds"],
                "wall_seconds": r["wall_seconds"],
                "device_id": int(r["device_id"]),
                "final_val_accuracy": r["fitness_history"][-1]
                if r["fitness_history"]
                else None,
                "num_predictions": len(r["prediction_history"]),
            }
        )
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("commons", type=Path)
    parser.add_argument("--out", type=Path, default=None,
                        help="write the per-network table as CSV")
    args = parser.parse_args()

    search_config = json.loads((args.commons / "search.json").read_text())
    rows = load_records(args.commons)
    if not rows:
        print(f"no record trails under {args.commons}", file=sys.stderr)
        return 1

    intensity = search_config.get("dataset", {}).get("intensity", "?")
    print(f"commons: {args.commons}  ({len(rows)} networks, "
          f"{intensity} intensity)")

    if pd is None:
        print("pandas not installed; printing plain summaries")
        mean_acc = sum(r["measured_fitness"] for r in rows) / len(rows)
        trained = sum(r["epochs_trained"] for r in rows)
        budget = sum(r["max_epochs"] for r in rows)
        early = sum(r["early_terminated"] for r in rows)
        print(f"mean accuracy      : {mean_acc:.2f}%")
        print(f"epochs trained     : {trained}/{budget} "
              f"({100 * (1 - trained / budget):.1f}% saved)")
        print(f"early terminated   : {early}/{len(rows)}")
        return 0

    df = pd.DataFrame(rows).set_index("model_id").sort_index()
    print(df[["fitness", "flops", "epochs_trained", "early_terminated"]]
          .describe(include="all"))
    print(f"\nmean accuracy      : {df.measured_fitness.mean():.2f}%")
    print(f"epoch savings      : "
          f"{100 * (1 - df.epochs_trained.sum() / df.max_epochs.sum()):.1f}%")
    print(f"early terminated   : {df.early_terminated.mean():.0%}")
    print(f"accuracy-vs-FLOPs corr: "
          f"{df.measured_fitness.corr(df.flops.astype(float)):.3f}")
    if args.out:
        df.to_csv(args.out)
        print(f"table written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
