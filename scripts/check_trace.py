#!/usr/bin/env python3
"""Validate an a4nn trace file (--trace-out / A4NN_TRACE output).

Checks, in order:
  1. The file parses as JSON and has the Chrome-trace shape: a
     "traceEvents" list whose entries are complete spans ("ph":"X"),
     instants ("ph":"i"), or metadata ("ph":"M").
  2. Spans on each (pid, tid) lane nest properly: two spans on one lane
     either don't overlap or one fully contains the other. A partial
     overlap means a clock went backwards or a lane id is being shared.
  3. The embedded metrics block agrees with the span arguments:
     scheduler retries / wasted seconds summed off the virtual-timeline
     job spans equal the "sched.*" counters, per-record accounting
     instants equal the "nas.*" counters, and their engine-overhead args
     sum to the "penguin.engine_overhead_seconds" counter. These are the
     same numbers RunSummary derives from the registry, so a mismatch
     means the trace and the summary disagree about what the run did.

Usage: check_trace.py TRACE_JSON

Exits 0 and prints a one-line summary per check on success; prints the
failure and exits 1 otherwise.
"""

import json
import sys

HOST_PID = 1
VIRTUAL_PID = 2
CLUSTER_PID = 3
STREAM_PID = 4

# Every cluster counter increments alongside exactly one pid-3 trace event
# (Master::note / the job.remote completion span), so trace and metrics
# must agree event-for-event, not just in aggregate.
CLUSTER_PAIRS = [
    ("cluster.remote_results", "job.remote", "X"),
    ("cluster.local_fallbacks", "job.local_fallback", "i"),
    ("cluster.dispatches", "job.dispatch", "i"),
    ("cluster.redispatches", "job.redispatch", "i"),
    ("cluster.worker_failures", "worker.failure", "i"),
    ("cluster.worker_quarantines", "worker.quarantine", "i"),
    ("cluster.heartbeat_timeouts", "worker.heartbeat_timeout", "i"),
    ("cluster.stale_results", "result.stale", "i"),
    ("cluster.corrupt_frames", "frame.corrupt", "i"),
    ("cluster.corrupt_results", "result.corrupt", "i"),
    ("cluster.worker_connects", "worker.connect", "i"),
    ("cluster.worker_rejects", "worker.reject", "i"),
    ("cluster.injected_partitions", "fault.partition", "i"),
    ("cluster.injected_torn_frames", "fault.torn_frame", "i"),
]
# Every stream counter increments alongside exactly one pid-4 instant
# (Supervisor::note / StreamScenario::note fire both at the same point),
# so the streaming loop's self-reported counts are held to the trace.
STREAM_PAIRS = [
    ("stream.windows", "drift.window"),
    ("stream.triggers_fired", "trigger.fired"),
    ("stream.triggers_acked", "trigger.acked"),
    ("stream.triggers_completed", "trigger.completed"),
    ("stream.triggers_shed", "trigger.shed"),
    ("stream.corrupt_frames", "frame.corrupt_drop"),
    ("stream.child_restarts", "child.restart"),
    ("stream.child_crashes", "child.crash"),
    ("stream.watchdog_stalls", "child.stall"),
    ("stream.degraded_entries", "child.degraded"),
]
# Hardware-aware objective instants live on the host lane (pid 1): every
# latency probe and every post-training quantization bumps its counter at
# the same point it emits the instant, so the two must agree one-for-one.
HARDWARE_PAIRS = [
    ("latency.probes", "latency.probe"),
    ("quant.quantizations", "quant.quantize"),
]
# Everything crossing JSON is an IEEE-754 round-trippable double, so the
# sums should match exactly; the epsilon only absorbs the associativity of
# Python summing in event order vs C++ summing in placement order.
REL_EPS = 1e-9


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def close(a, b):
    return abs(a - b) <= REL_EPS * max(1.0, abs(a), abs(b))


def check_shape(doc):
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("document is not an object with a traceEvents key")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents is empty")
    for i, e in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                fail(f"event {i} is missing {key!r}: {e}")
        if e["ph"] == "X":
            if "ts" not in e or "dur" not in e:
                fail(f"complete span {i} is missing ts/dur: {e}")
            if e["dur"] < 0:
                fail(f"span {e['name']!r} has negative duration {e['dur']}")
        elif e["ph"] == "i":
            if "ts" not in e:
                fail(f"instant {i} is missing ts: {e}")
        elif e["ph"] != "M":
            fail(f"event {i} has unknown phase {e['ph']!r}")
    return events


def check_nesting(events):
    lanes = {}
    for e in events:
        if e["ph"] == "X":
            lanes.setdefault((e["pid"], e["tid"]), []).append(e)
    checked = 0
    for (pid, tid), spans in lanes.items():
        # Sort by start, widest first, so a parent precedes its children.
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for e in spans:
            start, end = e["ts"], e["ts"] + e["dur"]
            while stack and start >= stack[-1] - 1e-6:
                stack.pop()
            if stack and end > stack[-1] + 1e-6:
                fail(
                    f"span {e['name']!r} on lane pid={pid} tid={tid} "
                    f"([{start}, {end}]) partially overlaps its enclosing "
                    f"span (ends at {stack[-1]})"
                )
            stack.append(end)
            checked += 1
    print(f"check_trace: ok: {checked} spans nest on {len(lanes)} lanes")


def check_metrics_agreement(doc, events):
    counters = doc.get("metrics", {}).get("counters")
    if counters is None:
        print("check_trace: ok: no embedded metrics block (skipping cross-check)")
        return

    span_retries = 0
    span_wasted = 0.0
    fault_events = 0
    accounting = 0
    overhead = 0.0
    for e in events:
        args = e.get("args", {})
        if (
            e["ph"] == "X"
            and e["pid"] == VIRTUAL_PID
            and e.get("cat") == "sched"
        ):
            span_retries += int(args["retries"])
            span_wasted += args["wasted_seconds"]
        if e["name"] in ("fault.transient", "fault.crash"):
            fault_events += 1
        if e["name"] == "record.accounting":
            accounting += 1
            overhead += args["engine_overhead_seconds"]

    expectations = [
        ("sched.retries", span_retries, "job-span retries args"),
        ("sched.wasted_virtual_seconds", span_wasted, "job-span wasted args"),
        (
            "sched.transient_faults+sched.job_crashes",
            fault_events,
            "fault events",
        ),
        ("nas.evaluations", accounting, "record.accounting instants"),
        (
            "penguin.engine_overhead_seconds",
            overhead,
            "record.accounting overhead args",
        ),
    ]
    for counter_name, observed, source in expectations:
        expected = sum(counters.get(part, 0.0) for part in counter_name.split("+"))
        if not close(expected, observed):
            fail(
                f"{source} sum to {observed} but the {counter_name} "
                f"counter says {expected}"
            )
        print(f"check_trace: ok: {source} match {counter_name} = {expected}")


def check_cluster_agreement(doc, events):
    """Cross-check pid-3 (cluster master) lanes against cluster.* counters.

    Passes trivially for solo runs: with no cluster counters and no pid-3
    events there is nothing to disagree about.
    """
    counters = doc.get("metrics", {}).get("counters", {})
    cluster_events = [e for e in events if e["pid"] == CLUSTER_PID]
    has_counters = any(name.startswith("cluster.") for name in counters)
    if not cluster_events and not has_counters:
        print("check_trace: ok: no cluster activity (skipping pid-3 cross-check)")
        return

    by_name = {}
    for e in cluster_events:
        by_name.setdefault((e["name"], e["ph"]), []).append(e)

    checked = 0
    for counter_name, event_name, phase in CLUSTER_PAIRS:
        expected = counters.get(counter_name, 0.0)
        observed = len(by_name.get((event_name, phase), []))
        if not close(expected, observed):
            fail(
                f"pid-3 {event_name!r} events number {observed} but the "
                f"{counter_name} counter says {expected}"
            )
        checked += 1
    # Remote completions must also balance the scheduler's view: every
    # sched.remote_job the scheduler handed out came back as a result.
    if "sched.remote_jobs" in counters:
        if not close(
            counters["sched.remote_jobs"],
            counters.get("cluster.remote_results", 0.0),
        ):
            fail(
                "sched.remote_jobs "
                f"({counters['sched.remote_jobs']}) disagrees with "
                f"cluster.remote_results "
                f"({counters.get('cluster.remote_results', 0.0)})"
            )
    print(
        f"check_trace: ok: {len(cluster_events)} pid-3 events match "
        f"{checked} cluster counters"
    )


def check_stream_agreement(doc, events):
    """Cross-check pid-4 (streaming loop) instants against stream.* counters.

    Passes trivially when the stream scenario never ran: no stream
    counters and no pid-4 events means nothing to disagree about.
    """
    counters = doc.get("metrics", {}).get("counters", {})
    stream_events = [e for e in events if e["pid"] == STREAM_PID]
    has_counters = any(name.startswith("stream.") for name in counters)
    if not stream_events and not has_counters:
        print("check_trace: ok: no stream activity (skipping pid-4 cross-check)")
        return

    by_name = {}
    for e in stream_events:
        if e["ph"] == "i":
            by_name.setdefault(e["name"], []).append(e)

    checked = 0
    for counter_name, event_name in STREAM_PAIRS:
        expected = counters.get(counter_name, 0.0)
        observed = len(by_name.get(event_name, []))
        if not close(expected, observed):
            fail(
                f"pid-4 {event_name!r} instants number {observed} but the "
                f"{counter_name} counter says {expected}"
            )
        checked += 1
    # The trigger ladder only moves forward: a trigger must be fired
    # before it is acked, and acked before it completes.
    fired = counters.get("stream.triggers_fired", 0.0)
    acked = counters.get("stream.triggers_acked", 0.0)
    completed = counters.get("stream.triggers_completed", 0.0)
    if not (fired >= acked >= completed):
        fail(
            f"trigger ladder runs backwards: fired={fired} "
            f"acked={acked} completed={completed}"
        )
    print(
        f"check_trace: ok: {len(stream_events)} pid-4 events match "
        f"{checked} stream counters"
    )


def check_hardware_agreement(doc, events):
    """Cross-check latency.*/quant.* counters against their host instants.

    Passes trivially for flops-objective, unquantized runs: no hardware
    counters and no matching instants means nothing to disagree about.
    """
    counters = doc.get("metrics", {}).get("counters", {})
    names = {event_name for _, event_name in HARDWARE_PAIRS}
    instants = [
        e
        for e in events
        if e["pid"] == HOST_PID and e["ph"] == "i" and e["name"] in names
    ]
    has_counters = any(
        name.startswith(("latency.", "quant.")) for name in counters
    )
    if not instants and not has_counters:
        print(
            "check_trace: ok: no hardware-objective activity "
            "(skipping latency/quant cross-check)"
        )
        return

    by_name = {}
    for e in instants:
        by_name.setdefault(e["name"], []).append(e)

    checked = 0
    for counter_name, event_name in HARDWARE_PAIRS:
        expected = counters.get(counter_name, 0.0)
        observed = len(by_name.get(event_name, []))
        if not close(expected, observed):
            fail(
                f"{event_name!r} instants number {observed} but the "
                f"{counter_name} counter says {expected}"
            )
        checked += 1
    print(
        f"check_trace: ok: {len(instants)} hardware-objective instants "
        f"match {checked} counters"
    )


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {sys.argv[1]}: {e}")

    events = check_shape(doc)
    real = [e for e in events if e["ph"] != "M"]
    print(f"check_trace: ok: {len(real)} events parse as Chrome trace format")
    check_nesting(events)
    check_metrics_agreement(doc, real)
    check_cluster_agreement(doc, real)
    check_stream_agreement(doc, real)
    check_hardware_agreement(doc, real)
    print("check_trace: PASS")


if __name__ == "__main__":
    main()
