#!/usr/bin/env bash
# Streaming-loop smoke test: train a mini commons, stream it with injected
# faults and a mid-stream label rotation (so a recovery trigger really
# fires), SIGKILL a second identical run mid-stream, resume it, and require
# the resumed trigger journal to be BYTE-identical to the undisturbed
# reference run's — plus the same champion lineage in the stats. Finishes
# by holding the run's trace to its stream.* counters via check_trace.py.
#
# Usage: stream_smoke.sh <a4nn_run binary> <a4nn_stream binary> [workdir]
set -euo pipefail

RUN=${1:?usage: stream_smoke.sh <a4nn_run binary> <a4nn_stream binary> [workdir]}
STREAM=${2:?usage: stream_smoke.sh <a4nn_run binary> <a4nn_stream binary> [workdir]}
WORK=${3:-$(mktemp -d)}
mkdir -p "$WORK"

echo "=== mini NAS run to seed a commons with a servable champion ==="
"$RUN" --population 3 --offspring 3 --generations 2 --epochs 3 \
    --images 20 --pixels 8 --seed 7 \
    --commons "$WORK/commons_ref" --snapshot-every 1 | tail -n 4

# Two byte-identical starting commons: one streams undisturbed (the
# reference), the other gets SIGKILLed mid-stream and resumed.
cp -r "$WORK/commons_ref" "$WORK/commons_kill"

# Paced so the run takes a few seconds (the SIGKILL lands mid-stream) and
# faulty enough to exercise corrupt-frame drops, watchdog reclaims
# (stall 250ms vs watchdog 100ms), and crash restarts. Identical flags for
# every run: the journal must be a pure function of them.
STREAM_FLAGS=(--frames 600 --rate-hz 150 --pool-per-class 8
    --drift-at 128 --window-frames 64 --fire-below 70 --rearm-above 85
    --sustain-windows 2 --cooldown-windows 2
    --buffer-frames 64 --finetune-epochs 2
    --faults --corrupt-prob 0.05 --stall-prob 0.01 --stall-ms 250
    --crash-prob 0.005
    --watchdog-ms 100 --max-restarts 100 --seed 7)

echo "=== reference run (undisturbed, instrumented) ==="
"$STREAM" --commons "$WORK/commons_ref" "${STREAM_FLAGS[@]}" \
    --stats-out "$WORK/ref_stats.json" \
    --trace-out "$WORK/stream_trace.json" | tail -n 6

echo "=== kill run: SIGKILL mid-stream, then --resume ==="
"$STREAM" --commons "$WORK/commons_kill" "${STREAM_FLAGS[@]}" \
    > "$WORK/kill.log" 2>&1 &
KILL_PID=$!
sleep 2.0
if kill -9 "$KILL_PID" 2>/dev/null; then
    echo "SIGKILLed streaming run (pid $KILL_PID) after 2.0s"
else
    echo "WARNING: streaming run finished before the kill landed" >&2
fi
wait "$KILL_PID" && true
STATUS=$?
echo "killed run exited with status $STATUS"

"$STREAM" --commons "$WORK/commons_kill" "${STREAM_FLAGS[@]}" --resume \
    --stats-out "$WORK/resume_stats.json" | tail -n 6

echo "=== comparing trigger journals (must be byte-identical) ==="
if ! diff -u "$WORK/commons_ref/stream.journal" \
             "$WORK/commons_kill/stream.journal"; then
    echo "FAIL: resumed journal differs from the undisturbed reference" >&2
    exit 1
fi
echo "JOURNAL BYTE-IDENTICAL ($(wc -l < "$WORK/commons_ref/stream.journal") line(s))"

echo "=== comparing deterministic run facts (champion lineage et al.) ==="
python3 - "$WORK/ref_stats.json" "$WORK/resume_stats.json" <<'EOF'
import json, sys
ref, res = (json.load(open(p)) for p in sys.argv[1:3])
# Not compared: accuracy_overall / window accuracies. A resumed run
# legitimately serves its pre-trigger frames with whatever champion the
# killed run had already published; the determinism contract is the
# journal bytes and the champion lineage, not interim serving accuracy.
keys = ["frames_produced", "frames_served", "frames_corrupt_dropped",
        "windows", "triggers_fired", "triggers_completed", "triggers_shed",
        "champions", "final_champion_model", "final_champion_epoch"]
bad = [k for k in keys if ref[k] != res[k]]
if bad:
    for k in bad:
        print(f"FAIL: {k}: reference={ref[k]!r} resumed={res[k]!r}",
              file=sys.stderr)
    sys.exit(1)
if ref["triggers_fired"] < 1 or ref["triggers_completed"] < 1:
    print("FAIL: no recovery trigger fired — the smoke asserted nothing",
          file=sys.stderr)
    sys.exit(1)
print(f"deterministic facts match: champion model "
      f"{ref['final_champion_model']} epoch {ref['final_champion_epoch']}, "
      f"{ref['triggers_completed']} recovery action(s) completed")
EOF

# The trace's pid-4 lanes must agree with the stream.* counters exactly.
if command -v python3 > /dev/null; then
    python3 "$(dirname "$0")/check_trace.py" "$WORK/stream_trace.json"
fi

echo "stream_smoke: PASS (artifacts in $WORK)"
