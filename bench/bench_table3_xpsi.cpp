// Table 3: wall time and accuracy of A4NN versus the XPSI framework
// (autoencoder + kNN) for the three beam intensities on a single GPU.
//
// Expected shape (paper): XPSI's single-model training time is far below
// the full NAS wall time, but A4NN's models match or beat XPSI's accuracy
// — decisively so on the noisy low-intensity data (97.8% vs 92%) — and
// distributing A4NN over 4 GPUs closes most of the wall-time gap.
#include <cstdio>

#include "analytics/analyzer.hpp"
#include "bench/common.hpp"
#include "xpsi/xpsi.hpp"

using namespace a4nn;

int main() {
  const bench::BenchScale scale = bench::bench_scale();
  std::printf("=== Table 3: A4NN vs XPSI per beam intensity ===\n\n");
  bench::print_configuration_tables(scale);

  util::AsciiTable table({"Beam", "Metric", "A4NN (1 GPU)", "A4NN (4 GPUs)",
                          "XPSI"});
  util::CsvWriter csv({"intensity", "a4nn_accuracy", "xpsi_accuracy",
                       "a4nn_1gpu_hours", "a4nn_4gpu_hours", "xpsi_hours"});
  for (const auto intensity : bench::all_intensities()) {
    const auto a4nn_records =
        bench::run_or_load(scale, intensity, true, bench::kSeedA);
    const auto summary = analytics::fitness_summary(a4nn_records);
    const auto one_gpu = bench::replay_schedule(a4nn_records, 1);
    const auto four_gpu = bench::replay_schedule(a4nn_records, 4);

    // XPSI trains once on the identical dataset.
    core::WorkflowConfig cfg =
        bench::experiment_config(scale, intensity, true, bench::kSeedA);
    const xfel::XfelDataset data = xfel::generate_xfel_dataset(cfg.dataset);
    xpsi::XpsiConfig xcfg;
    xcfg.autoencoder_epochs = 40;
    xpsi::XpsiClassifier classifier(xcfg);
    const xpsi::XpsiResult xpsi_result =
        classifier.fit_and_evaluate(data.train, data.validation);

    const double a4nn_1gpu_h = one_gpu.total_virtual_seconds / 3600.0;
    const double a4nn_4gpu_h = four_gpu.total_virtual_seconds / 3600.0;
    const double xpsi_h = xpsi_result.virtual_seconds / 3600.0;
    table.add_row({xfel::beam_name(intensity), "Wall Time (h)",
                   util::AsciiTable::num(a4nn_1gpu_h, 2),
                   util::AsciiTable::num(a4nn_4gpu_h, 2),
                   util::AsciiTable::num(xpsi_h, 2)});
    table.add_row({xfel::beam_name(intensity), "Accuracy (%)",
                   util::AsciiTable::num(summary.best_pareto, 1),
                   util::AsciiTable::num(summary.best_pareto, 1),
                   util::AsciiTable::num(xpsi_result.validation_accuracy, 1)});
    csv.add_row({xfel::beam_name(intensity),
                 util::AsciiTable::num(summary.best_pareto, 2),
                 util::AsciiTable::num(xpsi_result.validation_accuracy, 2),
                 util::AsciiTable::num(a4nn_1gpu_h, 3),
                 util::AsciiTable::num(a4nn_4gpu_h, 3),
                 util::AsciiTable::num(xpsi_h, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape checks vs paper: XPSI's wall time is fixed and much smaller\n"
      "than a full NAS; A4NN accuracy >= XPSI accuracy at every intensity,\n"
      "with the largest margin on noisy data; 4 GPUs shrink A4NN's gap.\n");
  csv.save(bench::artifacts_dir() / "table3_xpsi.csv");
  std::printf("\nseries written to bench_artifacts/table3_xpsi.csv\n");
  return 0;
}
