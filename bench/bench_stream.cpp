// Streaming-loop benchmark: the supervised beamline→champion pipeline on a
// self-contained temp commons, in three configurations — steady-state (no
// faults), faulty (corrupt/crash/stall under supervision), and drift
// recovery (a mid-stream label rotation fires fine-tune + hot-swap).
// Emits BENCH_stream.json with throughput, latency tails, and the
// supervision/recovery accounting, so fault-handling overhead is a number
// rather than a hope.
//
//   ./bench_stream                       # print table + write JSON
//   ./bench_stream --frames 1024
#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "lineage/tracker.hpp"
#include "nn/layers.hpp"
#include "stream/scenario.hpp"
#include "util/args.hpp"
#include "util/fsutil.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace a4nn;

namespace {

constexpr std::size_t kPixels = 8;
constexpr std::size_t kClasses = 2;

nn::Model tiny_model(std::uint64_t seed) {
  util::Rng rng(seed);
  auto trunk = std::make_unique<nn::Sequential>();
  trunk->append(std::make_unique<nn::Conv2d>(1, 4, 3, 1, 1, rng));
  trunk->append(std::make_unique<nn::ReLU>());
  trunk->append(std::make_unique<nn::MaxPool2d>(2));
  trunk->append(std::make_unique<nn::Flatten>());
  trunk->append(std::make_unique<nn::Linear>(4 * 4 * 4, kClasses, rng));
  return nn::Model(std::move(trunk), {1, kPixels, kPixels});
}

/// Fresh commons with one servable genesis champion (model 0, epoch 1).
std::filesystem::path make_commons() {
  const std::filesystem::path root = util::make_temp_dir("a4nn-bench-stream");
  lineage::LineageTracker tracker(
      lineage::TrackerConfig{root, 1, /*durable=*/false});
  tracker.record_search_config(util::Json::object());
  nn::Model model = tiny_model(11);
  tracker.record_model_epoch(0, 1, model);
  util::Rng rng(11);
  nas::EvaluationRecord r;
  r.genome = nas::random_genome(3, 4, rng);
  r.model_id = 0;
  r.fitness = 60.0;
  r.measured_fitness = 60.0;
  r.flops = model.flops_per_image();
  r.epochs_trained = 1;
  r.max_epochs = 25;
  tracker.record_evaluation(r);
  return root;
}

/// Unpaced base: the producer runs flat out so the measured frames/s is
/// pipeline throughput, not the rate controller echoing its own setting.
stream::StreamConfig base_config(const std::filesystem::path& root,
                                 std::size_t frames) {
  stream::StreamConfig cfg;
  cfg.commons_root = root;
  cfg.seed = 7;
  cfg.durable = false;
  cfg.producer.total_frames = frames;
  cfg.producer.pool_per_class = 8;
  cfg.producer.dataset.detector.pixels = kPixels;
  cfg.producer.dataset.conformations = kClasses;
  cfg.producer.dataset.seed = 7;
  cfg.drift.window_frames = 64;
  cfg.drift.num_classes = kClasses;
  cfg.drift.fire_below = 0.0;  // disarmed unless a config arms it
  cfg.drift.rearm_above = 0.0;
  cfg.recovery.buffer_frames = 64;
  cfg.recovery.finetune_epochs = 2;
  cfg.recovery.batch_size = 16;
  cfg.engine.max_batch = 8;
  cfg.engine.max_delay_ms = 0.2;
  cfg.engine.workers = 2;
  cfg.engine.queue_capacity = 1024;
  return cfg;
}

struct Row {
  const char* name;
  double wall_s = 0.0;
  stream::StreamResult result;
};

Row run(const char* name, stream::StreamConfig cfg) {
  util::Timer wall;
  Row row;
  row.name = name;
  row.result = stream::StreamScenario(std::move(cfg)).run();
  row.wall_s = wall.seconds();
  return row;
}

util::Json dump(const Row& row) {
  const stream::StreamResult& r = row.result;
  util::Json j = util::Json::object();
  j["wall_seconds"] = row.wall_s;
  j["frames_served"] = r.frames_served;
  j["frames_per_second"] =
      row.wall_s > 0.0 ? static_cast<double>(r.frames_served) / row.wall_s
                       : 0.0;
  j["frames_corrupt_dropped"] = r.frames_corrupt_dropped;
  j["windows"] = r.windows;
  j["p99_outside_faults_ms"] = r.p99_outside_faults_ms;
  j["accuracy_overall"] = r.accuracy_overall;
  j["child_restarts"] = r.child_restarts;
  j["child_crashes"] = r.child_crashes;
  j["watchdog_stalls"] = r.watchdog_stalls;
  j["triggers_fired"] = r.triggers_fired;
  j["triggers_completed"] = r.triggers_completed;
  j["final_champion_model"] = r.final_champion_model;
  j["degraded"] = r.degraded;
  j["aborted"] = r.aborted;
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_stream",
                       "Streaming-loop benchmark (BENCH_stream.json)");
  args.add_option("out", "BENCH_stream.json", "output JSON path");
  args.add_option("frames", "512", "frames per configuration");
  try {
    args.parse(argc, argv);
  } catch (const util::ArgError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), args.usage().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }
  const std::size_t frames = args.get_size("frames");

  std::vector<Row> rows;

  // Steady state: the cost of the pipeline itself.
  {
    const auto root = make_commons();
    rows.push_back(run("steady", base_config(root, frames)));
    std::filesystem::remove_all(root);
  }

  // Faulty: corrupt frames dropped, crashes and stalls reclaimed by the
  // supervisor. The throughput delta vs steady is the supervision tax.
  {
    const auto root = make_commons();
    stream::StreamConfig cfg = base_config(root, frames);
    cfg.fault.enabled = true;
    cfg.fault.stream_corrupt_prob = 0.03;
    cfg.fault.stream_crash_prob = 0.005;
    cfg.fault.stream_stall_prob = 0.005;
    cfg.fault.stream_stall_ms = 40.0;
    cfg.producer_policy.watchdog_ms = 15.0;
    cfg.producer_policy.max_restarts = 200;
    cfg.server_policy.max_restarts = 200;
    rows.push_back(run("faulty", cfg));
    std::filesystem::remove_all(root);
  }

  // Drift recovery: labels rotate mid-stream, accuracy collapses, the
  // monitor fires, recovery fine-tunes and hot-swaps a new champion.
  {
    const auto root = make_commons();
    stream::StreamConfig cfg = base_config(root, frames);
    stream::PhaseSpec rotated;
    rotated.start_frame = frames / 2;
    rotated.label_rotation = 1;
    cfg.producer.phases.push_back(rotated);
    cfg.drift.fire_below = 70.0;
    cfg.drift.rearm_above = 85.0;
    cfg.drift.sustain_windows = 2;
    cfg.drift.cooldown_windows = 2;
    rows.push_back(run("drift-recovery", cfg));
    std::filesystem::remove_all(root);
  }

  util::AsciiTable table({"config", "frames/s", "p99 ms", "acc %", "restarts",
                          "triggers", "wall s"});
  for (const Row& row : rows) {
    const stream::StreamResult& r = row.result;
    table.add_row(
        {row.name,
         util::AsciiTable::num(
             row.wall_s > 0.0
                 ? static_cast<double>(r.frames_served) / row.wall_s
                 : 0.0,
             0),
         util::AsciiTable::num(r.p99_outside_faults_ms, 2),
         util::AsciiTable::num(r.accuracy_overall, 1),
         util::AsciiTable::num(static_cast<double>(r.child_restarts), 0),
         util::AsciiTable::num(static_cast<double>(r.triggers_completed), 0),
         util::AsciiTable::num(row.wall_s, 2)});
  }
  std::printf("%s", table.render().c_str());

  util::Json json = util::Json::object();
  for (const Row& row : rows) json[row.name] = dump(row);
  json["frames"] = frames;
  util::write_file(args.get("out"), json.dump(2));
  std::printf("wrote %s\n", args.get("out").c_str());
  return 0;
}
