// §4.3.1 engine overhead: google-benchmark microbenchmarks of the
// prediction engine's per-interaction cost (the paper reports ~28 ms per
// Algorithm-1 interaction and ~52 s per 100-model test; our from-scratch
// Levenberg-Marquardt engine is far cheaper, which only strengthens the
// "overhead is negligible" conclusion).
#include <benchmark/benchmark.h>

#include <cmath>

#include "penguin/engine.hpp"
#include "util/rng.hpp"

using namespace a4nn;

namespace {

std::vector<double> synthetic_curve(std::size_t epochs, double plateau,
                                    double noise, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> ys;
  for (std::size_t e = 1; e <= epochs; ++e) {
    ys.push_back(plateau * (1.0 - std::exp(-0.35 * static_cast<double>(e))) +
                 rng.normal(0.0, noise));
  }
  return ys;
}

void BM_EngineConstruction(benchmark::State& state) {
  for (auto _ : state) {
    penguin::PredictionEngine engine(penguin::default_engine_config());
    benchmark::DoNotOptimize(engine);
  }
}
BENCHMARK(BM_EngineConstruction);

/// One predictor call (curve fit + extrapolation) at varying history
/// lengths — the per-epoch cost inside Algorithm 1.
void BM_PredictorInteraction(benchmark::State& state) {
  const penguin::PredictionEngine engine(penguin::default_engine_config());
  const auto curve = synthetic_curve(
      static_cast<std::size_t>(state.range(0)), 95.0, 0.5, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.predict(curve));
  }
}
BENCHMARK(BM_PredictorInteraction)->Arg(3)->Arg(8)->Arg(15)->Arg(25);

/// The analyzer's convergence check over a prediction window.
void BM_AnalyzerConvergence(benchmark::State& state) {
  const penguin::PredictionEngine engine(penguin::default_engine_config());
  const std::vector<double> predictions{94.8, 95.1, 95.0, 95.2, 95.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.converged(predictions));
  }
}
BENCHMARK(BM_AnalyzerConvergence);

/// A full simulated Algorithm-1 run over a 25-epoch curve: every
/// predictor + analyzer interaction a single NN costs.
void BM_FullTrainingLoopInteractions(benchmark::State& state) {
  const penguin::PredictionEngine engine(penguin::default_engine_config());
  const auto curve = synthetic_curve(25, 95.0, 0.5, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        penguin::simulate_early_termination(curve, engine));
  }
}
BENCHMARK(BM_FullTrainingLoopInteractions);

/// The paper's aggregate: engine interactions for a 100-model test.
void BM_HundredModelTestOverhead(benchmark::State& state) {
  const penguin::PredictionEngine engine(penguin::default_engine_config());
  std::vector<std::vector<double>> curves;
  for (std::uint64_t m = 0; m < 100; ++m)
    curves.push_back(synthetic_curve(25, 80.0 + (m % 20), 0.8, m));
  for (auto _ : state) {
    for (const auto& curve : curves) {
      benchmark::DoNotOptimize(
          penguin::simulate_early_termination(curve, engine));
    }
  }
}
BENCHMARK(BM_HundredModelTestOverhead)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
