// Figure 7: training epochs required to evaluate the search's networks,
// and the percentage saved relative to the standalone NSGA-Net baseline
// (which always trains every network for the full epoch budget).
//
// Expected shape (paper): standalone = networks x 25 epochs exactly; A4NN
// saves 13-38% with the smallest savings on the noisy low-intensity data
// (noisy curves converge later), and the two independent A4NN runs ("1
// GPU" and "4 GPUs") differ only by run-to-run search variation.
#include <cstdio>

#include "analytics/analyzer.hpp"
#include "bench/common.hpp"

using namespace a4nn;

int main() {
  const bench::BenchScale scale = bench::bench_scale();
  std::printf("=== Figure 7: epochs required and %% saved vs standalone ===\n\n");
  bench::print_configuration_tables(scale);

  const std::size_t budget = scale.total_networks() * scale.max_epochs;
  std::printf("standalone baseline: %zu networks x %zu epochs = %zu epochs\n\n",
              scale.total_networks(), scale.max_epochs, budget);

  util::AsciiTable table({"intensity", "variant", "epochs", "saved (%)"});
  util::CsvWriter csv({"intensity", "variant", "epochs", "saved_percent"});
  for (const auto intensity : bench::all_intensities()) {
    const auto standalone =
        bench::run_or_load(scale, intensity, false, bench::kSeedA);
    const auto a4nn_1gpu =
        bench::run_or_load(scale, intensity, true, bench::kSeedA);
    const auto a4nn_4gpu =
        bench::run_or_load(scale, intensity, true, bench::kSeedB);

    struct Row {
      const char* variant;
      const std::vector<nas::EvaluationRecord>* records;
    };
    for (const Row& row : {Row{"NSGA-Net (1 GPU)", &standalone},
                           Row{"A4NN (1 GPU)", &a4nn_1gpu},
                           Row{"A4NN (4 GPUs)", &a4nn_4gpu}}) {
      const auto savings = analytics::epoch_savings(*row.records);
      table.add_row({xfel::beam_name(intensity), row.variant,
                     std::to_string(savings.epochs_trained),
                     util::AsciiTable::num(100.0 * savings.saved_fraction, 1)});
      csv.add_row({xfel::beam_name(intensity), row.variant,
                   std::to_string(savings.epochs_trained),
                   util::AsciiTable::num(100.0 * savings.saved_fraction, 2)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "note: the \"4 GPUs\" run is an independent search (different seed);\n"
      "training results are placement-independent in this reproduction, so\n"
      "epoch differences between the 1- and 4-GPU rows reflect run-to-run\n"
      "search variation, as they do in the paper.\n");
  csv.save(bench::artifacts_dir() / "fig7_epoch_savings.csv");
  std::printf("\nseries written to bench_artifacts/fig7_epoch_savings.csv\n");
  return 0;
}
