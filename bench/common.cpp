#include "bench/common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "util/fsutil.hpp"
#include "util/timer.hpp"

namespace a4nn::bench {

namespace fs = std::filesystem;

BenchScale bench_scale() {
  const char* env = std::getenv("A4NN_SCALE");
  if (env != nullptr && std::strcmp(env, "paper") == 0) {
    // Table 2 of the paper: pop 10, 10 offspring, 10 generations, 25
    // epochs -> 100 networks per search.
    return BenchScale{"paper", 200, 10, 10, 10, 25};
  }
  return BenchScale{"quick", 100, 8, 8, 3, 25};
}

std::vector<xfel::BeamIntensity> all_intensities() {
  return {xfel::BeamIntensity::kLow, xfel::BeamIntensity::kMedium,
          xfel::BeamIntensity::kHigh};
}

fs::path artifacts_dir() {
  const fs::path dir = "bench_artifacts";
  util::ensure_dir(dir);
  return dir;
}

core::WorkflowConfig experiment_config(const BenchScale& scale,
                                       xfel::BeamIntensity intensity,
                                       bool use_engine, std::uint64_t seed) {
  core::WorkflowConfig cfg;
  cfg.dataset.intensity = intensity;
  cfg.dataset.images_per_class = scale.images_per_class;
  cfg.nas.population_size = scale.population;
  cfg.nas.offspring_per_generation = scale.offspring;
  cfg.nas.generations = scale.generations;
  cfg.nas.max_epochs = scale.max_epochs;
  cfg.trainer.max_epochs = scale.max_epochs;
  cfg.trainer.use_prediction_engine = use_engine;
  cfg.trainer.engine.e_pred = static_cast<double>(scale.max_epochs);
  cfg.cluster.num_gpus = 1;  // placements are replayed per GPU count
  cfg.seed = seed;
  return cfg;
}

namespace {

std::string cache_key(const BenchScale& scale, xfel::BeamIntensity intensity,
                      bool use_engine, std::uint64_t seed,
                      bool searchable_ops) {
  return scale.name + "_" + xfel::beam_name(intensity) + "_" +
         (use_engine ? "a4nn" : "standalone") + "_" + std::to_string(seed) +
         (searchable_ops ? "_ops" : "") + ".json";
}

}  // namespace

std::vector<nas::EvaluationRecord> run_or_load(const BenchScale& scale,
                                               xfel::BeamIntensity intensity,
                                               bool use_engine,
                                               std::uint64_t seed,
                                               bool searchable_ops) {
  const fs::path path = artifacts_dir() / cache_key(scale, intensity,
                                                    use_engine, seed,
                                                    searchable_ops);
  if (fs::exists(path)) {
    const util::Json doc = util::Json::parse(util::read_file(path));
    std::vector<nas::EvaluationRecord> records;
    for (const auto& j : doc.at("records").as_array())
      records.push_back(nas::EvaluationRecord::from_json(j));
    return records;
  }

  std::fprintf(stderr,
               "[bench] computing %s (%zu networks, %s intensity, %s)...\n",
               path.filename().c_str(), scale.total_networks(),
               xfel::beam_name(intensity), use_engine ? "A4NN" : "standalone");
  util::Timer timer;
  core::WorkflowConfig cfg =
      experiment_config(scale, intensity, use_engine, seed);
  cfg.nas.space.searchable_ops = searchable_ops;
  core::A4nnWorkflow workflow(std::move(cfg));
  const core::WorkflowResult result = workflow.run();
  std::fprintf(stderr, "[bench]   done in %.1f s host time\n",
               timer.seconds());

  util::Json doc = util::Json::object();
  doc["config"] = workflow.config().to_json();
  util::Json records = util::Json::array();
  for (const auto& r : result.search.history) records.push_back(r.to_json());
  doc["records"] = std::move(records);
  util::write_file(path, doc.dump());
  return result.search.history;
}

ReplayResult replay_schedule(const std::vector<nas::EvaluationRecord>& records,
                             std::size_t gpus) {
  // Group by generation, preserving model-id (submission) order.
  std::map<int, std::vector<double>> generations;
  for (const auto& r : records)
    generations[r.generation].push_back(r.virtual_seconds);

  sched::ClusterConfig cfg;
  cfg.num_gpus = gpus;
  cfg.parallel_execution = false;  // durations are precomputed
  sched::ResourceManager manager(cfg);
  ReplayResult out;
  for (const auto& [gen, durations] : generations) {
    std::vector<sched::Job> jobs;
    jobs.reserve(durations.size());
    for (double d : durations)
      jobs.push_back(sched::Job{[d] { return d; }});
    const auto schedule = manager.run_generation(std::move(jobs));
    out.total_idle_seconds += schedule.idle_seconds;
    out.schedules.push_back(schedule);
  }
  out.total_virtual_seconds = manager.virtual_now();
  return out;
}

void print_configuration_tables(const BenchScale& scale) {
  std::printf("Scale: %s (%zu networks per search, %zu images/class)\n\n",
              scale.name.c_str(), scale.total_networks(),
              scale.images_per_class);

  util::AsciiTable t1({"Variable", "Setting", "Description"});
  t1.add_row({"F", "F(x) = a - b^(c-x)", "parametric fitness model"});
  t1.add_row({"C_min", "3", "min epochs before making a prediction"});
  t1.add_row({"e_pred", std::to_string(scale.max_epochs),
              "epoch for which to predict final fitness"});
  t1.add_row({"N", "3", "predictions considered when converging"});
  t1.add_row({"r", "0.5", "variance tolerated in convergence"});
  std::printf("Table 1: Prediction Engine Configuration\n%s\n",
              t1.render().c_str());

  util::AsciiTable t2({"Setting", "Value"});
  t2.add_row({"size of starting population", std::to_string(scale.population)});
  t2.add_row({"number of nodes per phase", "4"});
  t2.add_row({"number of offspring per generation",
              std::to_string(scale.offspring)});
  t2.add_row({"number of generations", std::to_string(scale.generations)});
  t2.add_row({"number of epochs to train", std::to_string(scale.max_epochs)});
  std::printf("Table 2: NSGA-Net Configuration\n%s\n", t2.render().c_str());
}

}  // namespace a4nn::bench
