// §4.5 / Figure 10: the data commons. Runs a small search with per-epoch
// model snapshots, reports what the commons contains (the paper's run
// produced 54 GB / 25,790 models at datacenter scale), verifies a model
// reloads from an arbitrary epoch, and renders the architecture of one
// near-optimal NN (Figure 10).
#include <cstdio>
#include <filesystem>

#include "analytics/analyzer.hpp"
#include "bench/common.hpp"
#include "lineage/tracker.hpp"
#include "util/fsutil.hpp"

using namespace a4nn;

int main() {
  namespace fs = std::filesystem;
  std::printf("=== Data commons + Figure 10: lineage record trails ===\n\n");

  // A deliberately small search with snapshot_every=1 so the bench stays
  // fast while exercising the paper-scale record-trail machinery.
  core::WorkflowConfig cfg = bench::experiment_config(
      bench::BenchScale{"lineage", 60, 4, 4, 2, 10},
      xfel::BeamIntensity::kMedium, true, 5150);
  cfg.trainer.engine.e_pred = 10.0;
  const fs::path root = bench::artifacts_dir() / "commons_demo";
  fs::remove_all(root);
  cfg.lineage = lineage::TrackerConfig{root, /*snapshot_every=*/1};

  core::A4nnWorkflow workflow(cfg);
  const core::WorkflowResult result = workflow.run();

  // Inventory the commons.
  lineage::DataCommons commons(root);
  const auto records = commons.load_records();
  std::size_t snapshots = 0, bytes = 0;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    bytes += static_cast<std::size_t>(entry.file_size());
    if (entry.path().filename().string().rfind("epoch_", 0) == 0) ++snapshots;
  }
  std::printf("commons root     : %s\n", root.c_str());
  std::printf("record trails    : %zu networks\n", records.size());
  std::printf("model snapshots  : %zu (one per trained epoch)\n", snapshots);
  std::printf("commons size     : %.2f MB\n",
              static_cast<double>(bytes) / 1e6);

  // Reload-and-re-evaluate check: pick the best Pareto model and verify
  // the final-epoch snapshot reproduces its recorded validation accuracy.
  const auto pareto = analytics::pareto_indices(records);
  const auto& best = records[pareto.front()];
  nn::Model reloaded = commons.load_model(best.model_id, best.epochs_trained);
  const nn::EpochMetrics m =
      reloaded.evaluate(workflow.dataset().validation);
  std::printf("\nreload check     : model %d @ epoch %zu -> %.2f%% "
              "(recorded %.2f%%) %s\n",
              best.model_id, best.epochs_trained, m.accuracy,
              best.fitness_history.back(),
              std::abs(m.accuracy - best.fitness_history.back()) < 1e-6
                  ? "OK"
                  : "MISMATCH");

  std::printf("\nFigure 10: architecture of near-optimal model %d "
              "(%.2f%% accuracy, %llu FLOPs):\n%s\n",
              best.model_id, best.measured_fitness,
              static_cast<unsigned long long>(best.flops),
              analytics::render_architecture(best.genome, cfg.nas.space)
                  .c_str());

  // The commons query interface (the analyzer's notebook-style search).
  analytics::RecordQuery query;
  query.early_terminated_only = true;
  const auto early = analytics::find_records(records, query);
  std::printf("query: %zu of %zu networks were terminated early by the "
              "prediction engine\n",
              early.size(), records.size());
  (void)result;
  return 0;
}
