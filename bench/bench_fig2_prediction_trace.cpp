// Figure 2: the prediction engine's behaviour on one NN.
//
// Trains a single search-space network on the medium-intensity dataset
// with the engine plugged in and prints the per-epoch trace: measured
// validation fitness h_e, the engine's prediction of fitness at e_pred,
// and the analyzer's convergence decision. The paper's example converges
// at epoch 12 of 25; the reproduced trace should converge well before the
// epoch budget with a prediction close to the final plateau.
#include <cstdio>

#include "bench/common.hpp"
#include "orchestrator/training_loop.hpp"

using namespace a4nn;

int main() {
  const bench::BenchScale scale = bench::bench_scale();
  std::printf("=== Figure 2: fitness prediction trace of one NN ===\n\n");
  bench::print_configuration_tables(scale);

  core::WorkflowConfig cfg = bench::experiment_config(
      scale, xfel::BeamIntensity::kMedium, /*use_engine=*/true, 7);
  const xfel::XfelDataset data = xfel::generate_xfel_dataset(cfg.dataset);

  orchestrator::TrainingLoop loop(data.train, data.validation, cfg.trainer);
  util::Rng rng(12);
  const nas::Genome genome =
      nas::random_genome(cfg.nas.space.phase_count,
                         cfg.nas.space.nodes_per_phase, rng);
  const nas::EvaluationRecord record =
      loop.train_genome(genome, cfg.nas.space, 0, 4242);

  util::AsciiTable table(
      {"epoch", "val fitness h_e", "prediction p_e(acc@e_pred)", "status"});
  std::size_t pred_idx = 0;
  penguin::PredictionEngine engine(cfg.trainer.engine);
  std::vector<double> predictions;
  for (std::size_t e = 1; e <= record.epochs_trained; ++e) {
    std::string pred = "-";
    std::string status = "training";
    // Reconstruct which epochs produced predictions: the engine needs
    // C_min points; replay its decisions from the recorded history.
    const std::span<const double> history(record.fitness_history.data(), e);
    const auto p = engine.predict(history);
    if (p) {
      predictions.push_back(*p);
      pred = util::AsciiTable::num(*p, 2);
      if (engine.converged(predictions)) status = "CONVERGED -> stop";
      else status = "not converged";
    }
    table.add_row({std::to_string(e),
                   util::AsciiTable::num(record.fitness_history[e - 1], 2),
                   pred, status});
    (void)pred_idx;
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("model: %llu FLOPs/image, trained %zu/%zu epochs%s\n",
              static_cast<unsigned long long>(record.flops),
              record.epochs_trained, record.max_epochs,
              record.early_terminated ? " (terminated early)" : "");
  if (record.early_terminated) {
    std::printf("converged fitness prediction: %.2f%% "
                "(last measured: %.2f%%)\n",
                record.fitness, record.measured_fitness);
  }

  // CSV series for external plotting.
  util::CsvWriter csv({"epoch", "fitness", "prediction"});
  for (std::size_t e = 1; e <= record.epochs_trained; ++e) {
    const std::span<const double> history(record.fitness_history.data(), e);
    const auto p = engine.predict(history);
    csv.add_row({std::to_string(e),
                 util::AsciiTable::num(record.fitness_history[e - 1], 4),
                 p ? util::AsciiTable::num(*p, 4) : ""});
  }
  csv.save(bench::artifacts_dir() / "fig2_prediction_trace.csv");
  std::printf("\nseries written to bench_artifacts/fig2_prediction_trace.csv\n");
  return 0;
}
