// Ablation: FIFO dynamic scheduling (Ray's policy, used by the paper's
// resource manager) vs longest-job-first (LPT) and shortest-job-first on
// the cached per-model durations, at 2 and 4 simulated GPUs. Quantifies
// how much generation makespan FIFO leaves on the table.
#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>

#include "bench/common.hpp"

using namespace a4nn;

namespace {

/// List-schedule `durations` (in the given order) onto `gpus` devices and
/// return the makespan contribution past `start`.
double makespan_of(const std::vector<double>& durations, std::size_t gpus) {
  std::vector<double> free_at(gpus, 0.0);
  for (double d : durations) {
    auto next = std::min_element(free_at.begin(), free_at.end());
    *next += d;
  }
  return *std::max_element(free_at.begin(), free_at.end());
}

enum class Order { kFifo, kLongestFirst, kShortestFirst };

double total_time(const std::vector<nas::EvaluationRecord>& records,
                  std::size_t gpus, Order order) {
  std::map<int, std::vector<double>> generations;
  for (const auto& r : records)
    generations[r.generation].push_back(r.virtual_seconds);
  double total = 0.0;
  for (auto& [gen, durations] : generations) {
    if (order == Order::kLongestFirst) {
      std::sort(durations.begin(), durations.end(), std::greater<>());
    } else if (order == Order::kShortestFirst) {
      std::sort(durations.begin(), durations.end());
    }
    total += makespan_of(durations, gpus);
  }
  return total;
}

}  // namespace

int main() {
  const bench::BenchScale scale = bench::bench_scale();
  std::printf("=== Ablation: FIFO vs sorted dispatch on simulated GPUs ===\n\n");
  bench::print_configuration_tables(scale);

  util::AsciiTable table({"intensity", "GPUs", "FIFO (h)", "LPT (h)",
                          "SJF (h)", "LPT gain (%)"});
  util::CsvWriter csv({"intensity", "gpus", "fifo_hours", "lpt_hours",
                       "sjf_hours"});
  for (const auto intensity : bench::all_intensities()) {
    const auto records =
        bench::run_or_load(scale, intensity, true, bench::kSeedA);
    for (const std::size_t gpus : {2, 4}) {
      const double fifo = total_time(records, gpus, Order::kFifo) / 3600.0;
      const double lpt =
          total_time(records, gpus, Order::kLongestFirst) / 3600.0;
      const double sjf =
          total_time(records, gpus, Order::kShortestFirst) / 3600.0;
      table.add_row({xfel::beam_name(intensity), std::to_string(gpus),
                     util::AsciiTable::num(fifo, 2),
                     util::AsciiTable::num(lpt, 2),
                     util::AsciiTable::num(sjf, 2),
                     util::AsciiTable::num(100.0 * (fifo - lpt) / fifo, 1)});
      csv.add_row({xfel::beam_name(intensity), std::to_string(gpus),
                   util::AsciiTable::num(fifo, 3),
                   util::AsciiTable::num(lpt, 3),
                   util::AsciiTable::num(sjf, 3)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected: LPT trims the end-of-generation straggler idle time the\n"
      "paper attributes to FIFO + barriers; the gain is a few percent, which\n"
      "is why Ray's simple FIFO policy is an acceptable choice.\n");
  csv.save(bench::artifacts_dir() / "ablation_sched.csv");
  std::printf("\nseries written to bench_artifacts/ablation_sched.csv\n");
  return 0;
}
