// Ablation: the paper's macro search space (every phase node is Conv3x3)
// vs this repo's extended space where each node also chooses its operation
// (conv3x3 / sepconv3x3 / conv1x1 / sepconv5x5) via two extra genome bits
// per node — the "generalized to other search spaces" direction of the
// paper's conclusions. Compares the frontiers' best fitness, cheapest
// Pareto model, and FLOPs spread on identical data.
#include <algorithm>
#include <cstdio>

#include "analytics/analyzer.hpp"
#include "bench/common.hpp"

using namespace a4nn;

int main() {
  const bench::BenchScale scale = bench::bench_scale();
  std::printf("=== Ablation: macro vs operation-searchable space ===\n\n");
  bench::print_configuration_tables(scale);

  util::AsciiTable table({"space", "best fitness (%)", "cheapest Pareto "
                          "(FLOPs)", "frontier FLOPs span", "epochs saved (%)"});
  util::CsvWriter csv({"space", "best_fitness", "cheapest_pareto_flops",
                       "flops_span", "saved_percent"});
  for (const bool ops : {false, true}) {
    const auto records = bench::run_or_load(
        scale, xfel::BeamIntensity::kMedium, true, bench::kSeedA, ops);
    const auto pareto = analytics::pareto_indices(records);
    const auto summary = analytics::fitness_summary(records);
    const auto savings = analytics::epoch_savings(records);
    std::uint64_t min_flops = records[pareto[0]].flops;
    std::uint64_t max_flops = min_flops;
    for (std::size_t idx : pareto) {
      min_flops = std::min(min_flops, records[idx].flops);
      max_flops = std::max(max_flops, records[idx].flops);
    }
    const char* name = ops ? "extended (op search)" : "macro (paper)";
    table.add_row({name, util::AsciiTable::num(summary.best, 2),
                   std::to_string(min_flops),
                   std::to_string(max_flops - min_flops),
                   util::AsciiTable::num(100.0 * savings.saved_fraction, 1)});
    csv.add_row({name, util::AsciiTable::num(summary.best, 2),
                 std::to_string(min_flops),
                 std::to_string(max_flops - min_flops),
                 util::AsciiTable::num(100.0 * savings.saved_fraction, 2)});

    // Show one representative architecture from the extended space.
    if (ops) {
      nas::SearchSpaceConfig space;
      space.searchable_ops = true;
      const auto& best = records[pareto.front()];
      std::printf("extended-space Pareto model %d:\n%s\n", best.model_id,
                  analytics::render_architecture(best.genome, space).c_str());
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected: operation search widens the frontier toward cheaper models\n"
      "(conv1x1/sepconv nodes) at comparable best accuracy, and the engine's\n"
      "savings carry over unchanged — the workflow is search-space agnostic.\n");
  csv.save(bench::artifacts_dir() / "ablation_space.csv");
  std::printf("\nseries written to bench_artifacts/ablation_space.csv\n");
  return 0;
}
