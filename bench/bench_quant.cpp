// Quantized-serving benchmark: float32 vs int8 inference at the serving
// micro-batch geometry, measured with the same LatencyProbe the
// measured-p99 registry policy uses. Emits BENCH_quant.json (per-image
// latency, throughput, int8 speedup, accuracy drop) and — with --floor —
// enforces a regression gate mirroring bench_serve: any metric below half
// its checked-in floor fails the run.
//
//   ./bench_quant                            # print table + write JSON
//   ./bench_quant --floor ../bench/quant_floor.json
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "latency/probe.hpp"
#include "nn/layers.hpp"
#include "nn/optimizer.hpp"
#include "quant/quantized_model.hpp"
#include "util/args.hpp"
#include "util/fsutil.hpp"
#include "util/table.hpp"
#include "xfel/dataset.hpp"

using namespace a4nn;

namespace {

constexpr std::size_t kSide = 16;  // {1,16,16} detector input

/// Conv stem + wide MLP head — the same shape family as bench_serve. The
/// wide Linears are memory-bound at micro-batch widths: the float path
/// streams 4 bytes per weight, the int8 path 1, which is exactly where
/// post-training quantization pays at serve time.
nn::Model bench_model(std::uint64_t seed, std::size_t classes) {
  util::Rng rng(seed);
  auto trunk = std::make_unique<nn::Sequential>();
  auto conv = std::make_unique<nn::Conv2d>(1, 8, 3, 1, 1, rng);
  conv->set_activation(nn::Activation::kRelu);
  trunk->append(std::move(conv));
  trunk->append(std::make_unique<nn::MaxPool2d>(2));
  trunk->append(std::make_unique<nn::Flatten>());
  auto fc1 = std::make_unique<nn::Linear>(8 * 8 * 8, 512, rng);
  fc1->set_activation(nn::Activation::kRelu);
  trunk->append(std::move(fc1));
  auto fc2 = std::make_unique<nn::Linear>(512, 512, rng);
  fc2->set_activation(nn::Activation::kRelu);
  trunk->append(std::move(fc2));
  trunk->append(std::make_unique<nn::Linear>(512, classes, rng));
  return nn::Model(std::move(trunk), {1, kSide, kSide});
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_quant",
                       "float vs int8 serving benchmark (BENCH_quant.json)");
  args.add_option("out", "BENCH_quant.json", "output JSON path");
  args.add_option("batch", "8", "micro-batch rows per timed forward");
  args.add_option("repeats", "40", "timed passes per variant");
  args.add_option("epochs", "8", "training epochs before quantization");
  args.add_option("lr", "0.01", "SGD learning rate for the warm-up training");
  args.add_option("floor", "",
                  "quant_floor.json with minimum values; exit nonzero if "
                  "any metric measures below half its floor");
  try {
    args.parse(argc, argv);
  } catch (const util::ArgError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), args.usage().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }

  // A briefly trained XFEL classifier, so the accuracy-drop number is
  // measured on a model that actually separates the classes.
  xfel::XfelDatasetConfig ds;
  ds.images_per_class = 120;  // 48-image validation split: 2.1pp granularity
  ds.detector.pixels = kSide;
  ds.intensity = xfel::BeamIntensity::kHigh;
  const xfel::XfelDataset data = xfel::generate_xfel_dataset(ds);

  nn::Model model = bench_model(42, data.train.num_classes());
  {
    nn::Sgd opt(std::stod(args.get("lr")));
    util::Rng rng(7);
    const std::size_t epochs = args.get_size("epochs");
    for (std::size_t e = 0; e < epochs; ++e)
      model.train_epoch(data.train, 8, opt, rng);
  }

  // Calibration: the first 32 training images, the registry's default.
  std::vector<std::size_t> idx(std::min<std::size_t>(32, data.train.size()));
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  quant::QuantizedModel qm =
      quant::QuantizedModel::quantize(model, data.train.gather(idx).images);

  const double float_acc = model.evaluate(data.validation).accuracy;
  std::vector<std::size_t> val_idx(data.validation.size());
  for (std::size_t i = 0; i < val_idx.size(); ++i) val_idx[i] = i;
  const nn::Dataset::Batch val = data.validation.gather(val_idx);
  const double int8_acc = quant::top1_accuracy(
      qm.predict(val.images),
      std::vector<std::size_t>(val.labels.begin(), val.labels.end()));

  latency::ProbeConfig pcfg;
  pcfg.batch = args.get_size("batch");
  pcfg.warmup = 3;
  pcfg.repeats = args.get_size("repeats");
  const latency::LatencyProbe prober(pcfg);
  const latency::ProbeResult fl = prober.probe(model);
  const latency::ProbeResult i8 = prober.probe_fn(
      [&qm](const tensor::Tensor& x) { qm.predict(x); }, model.input_shape());

  const double float_rps = fl.median_ms > 0.0 ? 1000.0 / fl.median_ms : 0.0;
  const double int8_rps = i8.median_ms > 0.0 ? 1000.0 / i8.median_ms : 0.0;
  const double speedup = float_rps > 0.0 ? int8_rps / float_rps : 0.0;
  const double drop_pct = float_acc - int8_acc;

  util::AsciiTable table(
      {"variant", "median ms/img", "p99 ms/img", "img/s", "accuracy %"});
  table.add_row({"float32", util::AsciiTable::num(fl.median_ms, 4),
                 util::AsciiTable::num(fl.p99_ms, 4),
                 util::AsciiTable::num(float_rps, 0),
                 util::AsciiTable::num(float_acc, 2)});
  table.add_row({"int8", util::AsciiTable::num(i8.median_ms, 4),
                 util::AsciiTable::num(i8.p99_ms, 4),
                 util::AsciiTable::num(int8_rps, 0),
                 util::AsciiTable::num(int8_acc, 2)});
  std::printf("%s", table.render().c_str());
  std::printf("int8 vs float throughput: %.2fx, accuracy drop: %.2fpp\n",
              speedup, drop_pct);

  util::Json json = util::Json::object();
  auto dump = [](const latency::ProbeResult& r, double rps, double acc) {
    util::Json j = util::Json::object();
    j["median_ms_per_image"] = r.median_ms;
    j["p99_ms_per_image"] = r.p99_ms;
    j["images_per_second"] = rps;
    j["accuracy_pct"] = acc;
    return j;
  };
  json["float32"] = dump(fl, float_rps, float_acc);
  json["int8"] = dump(i8, int8_rps, int8_acc);
  json["int8_speedup"] = speedup;
  json["accuracy_drop_pct"] = drop_pct;
  json["batch"] = pcfg.batch;
  json["int8_parameters"] = qm.int8_parameters();
  util::write_file(args.get("out"), json.dump(2));
  std::printf("wrote %s\n", args.get("out").c_str());

  if (!args.get("floor").empty()) {
    const util::Json floors =
        util::Json::parse(util::read_file(args.get("floor")));
    struct Gate {
      const char* key;
      double value;
    };
    const Gate gates[] = {{"float_rps", float_rps},
                          {"int8_rps", int8_rps},
                          {"int8_speedup", speedup}};
    int violations = 0;
    for (const Gate& g : gates) {
      if (!floors.contains(g.key)) continue;
      const double floor = floors.at(g.key).as_number();
      if (g.value < floor / 2.0) {
        std::fprintf(stderr, "REGRESSION %s: %.2f < half of floor %.2f\n",
                     g.key, g.value, floor);
        ++violations;
      }
    }
    // The accuracy guard is absolute, not halved: a quantization that
    // costs more accuracy than the epsilon contract is a correctness
    // regression, not a slow machine.
    if (floors.contains("max_accuracy_drop_pct")) {
      const double eps = floors.at("max_accuracy_drop_pct").as_number();
      if (drop_pct > eps) {
        std::fprintf(stderr,
                     "REGRESSION accuracy_drop_pct: %.2f > epsilon %.2f\n",
                     drop_pct, eps);
        ++violations;
      }
    }
    if (violations > 0) return 2;
    std::printf("floor check passed (%s)\n", args.get("floor").c_str());
  }
  return 0;
}
