// Shared experiment runner for the figure/table benches.
//
// Every evaluation figure in the paper is derived from the same nine
// searches (3 intensities x {A4NN seed A, A4NN seed B, standalone}).
// Searches are expensive, so this runner caches their full record trails
// as JSON under ./bench_artifacts/, keyed by scale + configuration;
// re-running a bench binary reuses the cache. GPU-count variations are
// *replayed* from the cached per-model virtual durations through the real
// ResourceManager — training results do not depend on placement, so this
// is exact, not an approximation.
//
// Scale is selected with the A4NN_SCALE environment variable:
//   quick (default) — 24 networks/search, 100 images/class: minutes total.
//   paper           — Table 2's 100 networks/search, 200 images/class.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "core/a4nn.hpp"
#include "sched/resource_manager.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace a4nn::bench {

struct BenchScale {
  std::string name;
  std::size_t images_per_class = 100;
  std::size_t population = 8;
  std::size_t offspring = 8;
  std::size_t generations = 3;
  std::size_t max_epochs = 25;

  std::size_t total_networks() const {
    return population + (generations - 1) * offspring;
  }
};

/// Resolve from A4NN_SCALE (quick | paper); defaults to quick.
BenchScale bench_scale();

/// Seeds for the two independent A4NN runs (the paper's 1-GPU and 4-GPU
/// measurements are separate runs; run-to-run NAS variation is genuine).
inline constexpr std::uint64_t kSeedA = 1001;
inline constexpr std::uint64_t kSeedB = 2002;

/// The workflow configuration for one cached search.
core::WorkflowConfig experiment_config(const BenchScale& scale,
                                       xfel::BeamIntensity intensity,
                                       bool use_engine, std::uint64_t seed);

/// Run (or load from bench_artifacts/) one search and return its record
/// trail. Prints a one-line note when computing fresh. `searchable_ops`
/// switches to the extended per-node-operation search space.
std::vector<nas::EvaluationRecord> run_or_load(const BenchScale& scale,
                                               xfel::BeamIntensity intensity,
                                               bool use_engine,
                                               std::uint64_t seed,
                                               bool searchable_ops = false);

/// Re-simulate FIFO scheduling of cached records onto `gpus` devices.
struct ReplayResult {
  std::vector<sched::GenerationSchedule> schedules;
  double total_virtual_seconds = 0.0;  // final barrier
  double total_idle_seconds = 0.0;
};
ReplayResult replay_schedule(const std::vector<nas::EvaluationRecord>& records,
                             std::size_t gpus);

/// Paper-style preamble: prints Table 1 (engine config) and Table 2 (NAS
/// config) for the current scale so every bench is self-describing.
void print_configuration_tables(const BenchScale& scale);

/// bench_artifacts/ directory (created on demand).
std::filesystem::path artifacts_dir();

/// All three intensities in paper order.
std::vector<xfel::BeamIntensity> all_intensities();

}  // namespace a4nn::bench
