// Serving benchmark: closed-loop load against the micro-batching engine,
// batch-1 baseline vs micro-batched, on a self-contained temp commons.
// Emits BENCH_serve.json (throughput, p50/p95/p99 latency, speedup) and —
// with --floor — enforces a regression gate: any metric measuring below
// half its checked-in floor fails the run, mirroring bench_kernels.
//
//   ./bench_serve                            # print table + write JSON
//   ./bench_serve --floor ../bench/serve_floor.json
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "lineage/tracker.hpp"
#include "nn/layers.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "util/args.hpp"
#include "util/fsutil.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace a4nn;

namespace {

constexpr std::size_t kSide = 16;  // {1,16,16} detector input
constexpr std::size_t kClasses = 2;

/// Conv stem + wide MLP head. The head is where micro-batching pays even
/// on one core: a batch-1 Linear is a GEMM with m=1 that re-streams the
/// whole weight matrix per request, while m=32 reuses every weight tile
/// across the batch. The conv stem's per-image GEMMs cost the same either
/// way, so the measured speedup is the genuine batching win, not a
/// parallelism artifact.
nn::Model bench_model(std::uint64_t seed) {
  util::Rng rng(seed);
  auto trunk = std::make_unique<nn::Sequential>();
  trunk->append(std::make_unique<nn::Conv2d>(1, 8, 3, 1, 1, rng));
  trunk->append(std::make_unique<nn::ReLU>());
  trunk->append(std::make_unique<nn::MaxPool2d>(2));
  trunk->append(std::make_unique<nn::Flatten>());
  trunk->append(std::make_unique<nn::Linear>(8 * 8 * 8, 512, rng));
  trunk->append(std::make_unique<nn::ReLU>());
  trunk->append(std::make_unique<nn::Linear>(512, 512, rng));
  trunk->append(std::make_unique<nn::ReLU>());
  trunk->append(std::make_unique<nn::Linear>(512, kClasses, rng));
  return nn::Model(std::move(trunk), {1, kSide, kSide});
}

struct LoadResult {
  double rps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch = 0.0;
};

/// Drive `total` requests from `clients` closed-loop threads (one
/// outstanding request each) and read the tail off the engine stats.
LoadResult drive(serve::ModelRegistry& registry, serve::EngineConfig cfg,
                 std::size_t clients, std::size_t total,
                 const std::vector<std::vector<float>>& images) {
  serve::InferenceEngine engine(registry, cfg);
  std::atomic<std::size_t> answered{0};
  util::Timer wall;
  {
    std::vector<std::thread> fleet;
    for (std::size_t c = 0; c < clients; ++c) {
      fleet.emplace_back([&, c] {
        for (std::size_t i = c; i < total; i += clients) {
          auto res = engine.submit(images[i % images.size()]);
          if (res.admission != serve::Admission::kAccepted) continue;
          res.prediction.get();
          answered.fetch_add(1);
        }
      });
    }
    for (auto& t : fleet) t.join();
  }
  engine.drain();
  const double seconds = wall.seconds();
  const util::Json stats = engine.stats();
  LoadResult r;
  r.rps = seconds > 0.0 ? static_cast<double>(answered.load()) / seconds : 0.0;
  r.p50_ms = stats.at("latency_ms").at("p50").as_number();
  r.p95_ms = stats.at("latency_ms").at("p95").as_number();
  r.p99_ms = stats.at("latency_ms").at("p99").as_number();
  r.mean_batch = stats.at("batches").at("mean_size").as_number();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_serve",
                       "Serving throughput benchmark (BENCH_serve.json)");
  args.add_option("out", "BENCH_serve.json", "output JSON path");
  args.add_option("requests", "3000", "requests per configuration");
  args.add_option("workers", "4", "workers for the micro-batched config");
  args.add_option("floor", "",
                  "serve_floor.json with minimum values; exit nonzero if "
                  "any metric measures below half its floor");
  try {
    args.parse(argc, argv);
  } catch (const util::ArgError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), args.usage().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }

  // Self-contained commons: publish one champion into a temp tree.
  const std::filesystem::path root = util::make_temp_dir("a4nn-bench-serve");
  {
    lineage::LineageTracker tracker({root, 1, /*durable=*/false});
    tracker.record_search_config(util::Json::object());
    nn::Model model = bench_model(42);
    tracker.record_model_epoch(0, 1, model);
    util::Rng rng(42);
    nas::EvaluationRecord record;
    record.genome = nas::random_genome(3, 4, rng);
    record.model_id = 0;
    record.fitness = 90.0;
    record.flops = model.flops_per_image();
    tracker.record_evaluation(record);
  }
  serve::ModelRegistry registry({root});
  registry.refresh();

  util::Rng rng(7);
  std::vector<std::vector<float>> images(64);
  for (auto& img : images) {
    img.resize(kSide * kSide);
    for (auto& v : img) v = static_cast<float>(rng.uniform());
  }

  const std::size_t total = args.get_size("requests");

  // Baseline: strictly one request per forward pass, serially.
  serve::EngineConfig base_cfg;
  base_cfg.max_batch = 1;
  base_cfg.max_delay_ms = 0.0;
  base_cfg.queue_capacity = 8192;
  base_cfg.workers = 1;
  const LoadResult baseline = drive(registry, base_cfg, 1, total, images);

  // Micro-batched: wide batches, multiple workers, a saturating fleet.
  serve::EngineConfig micro_cfg;
  micro_cfg.max_batch = 32;
  micro_cfg.max_delay_ms = 1.0;
  micro_cfg.queue_capacity = 8192;
  micro_cfg.workers = args.get_size("workers");
  const LoadResult micro = drive(registry, micro_cfg, 32, total, images);
  std::filesystem::remove_all(root);

  util::AsciiTable table(
      {"config", "req/s", "p50 ms", "p95 ms", "p99 ms", "mean batch"});
  auto row = [&table](const char* name, const LoadResult& r) {
    table.add_row({name, util::AsciiTable::num(r.rps, 0),
                   util::AsciiTable::num(r.p50_ms, 2),
                   util::AsciiTable::num(r.p95_ms, 2),
                   util::AsciiTable::num(r.p99_ms, 2),
                   util::AsciiTable::num(r.mean_batch, 2)});
  };
  row("batch-1", baseline);
  row("micro-batched", micro);
  std::printf("%s", table.render().c_str());
  const double speedup = baseline.rps > 0.0 ? micro.rps / baseline.rps : 0.0;
  std::printf("micro-batched vs batch-1 throughput: %.2fx\n", speedup);

  util::Json json = util::Json::object();
  auto dump = [](const LoadResult& r) {
    util::Json j = util::Json::object();
    j["throughput_rps"] = r.rps;
    j["p50_ms"] = r.p50_ms;
    j["p95_ms"] = r.p95_ms;
    j["p99_ms"] = r.p99_ms;
    j["mean_batch"] = r.mean_batch;
    return j;
  };
  json["baseline"] = dump(baseline);
  json["micro_batched"] = dump(micro);
  json["speedup"] = speedup;
  json["requests"] = total;
  util::write_file(args.get("out"), json.dump(2));
  std::printf("wrote %s\n", args.get("out").c_str());

  if (!args.get("floor").empty()) {
    const util::Json floors =
        util::Json::parse(util::read_file(args.get("floor")));
    struct Gate {
      const char* key;
      double value;
    };
    const Gate gates[] = {{"baseline_rps", baseline.rps},
                          {"micro_rps", micro.rps},
                          {"speedup", speedup}};
    int violations = 0;
    for (const Gate& g : gates) {
      if (!floors.contains(g.key)) continue;
      const double floor = floors.at(g.key).as_number();
      if (g.value < floor / 2.0) {
        std::fprintf(stderr, "REGRESSION %s: %.2f < half of floor %.2f\n",
                     g.key, g.value, floor);
        ++violations;
      }
    }
    if (violations > 0) return 2;
    std::printf("floor check passed (%s)\n", args.get("floor").c_str());
  }
  return 0;
}
