// Memoization benchmark: (a) a duplicate-heavy NSGA-Net search run twice —
// memo cold (genome-keyed seeds, no reuse) vs memo on (O(1) replay of
// already-evaluated genomes) — reporting the wall-clock speedup and
// checking the two runs agree on the final Pareto front; (b) a tabular
// sweep throughput measurement: a small space is trained once into a
// genome table, then ablation sweeps are served straight from the table.
// Emits BENCH_memo.json and — with --floor — enforces the half-floor
// regression gate used by bench_kernels/bench_serve.
//
//   ./bench_memo
//   ./bench_memo --floor ../bench/memo_floor.json
#include <algorithm>
#include <cstdio>

#include "core/a4nn.hpp"
#include "nas/table.hpp"
#include "util/args.hpp"
#include "util/fsutil.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace a4nn;

namespace {

/// A tiny (16-genome) space makes duplicates unavoidable: with
/// allow_duplicates on, a 64-evaluation search revisits genomes constantly,
/// which is exactly the regime the memo-cache accelerates.
core::WorkflowConfig search_config(nas::MemoMode memo) {
  core::WorkflowConfig cfg;
  cfg.dataset.images_per_class = 12;
  cfg.dataset.detector.pixels = 8;
  cfg.nas.population_size = 8;
  cfg.nas.offspring_per_generation = 8;
  cfg.nas.generations = 8;
  cfg.nas.space.phase_count = 2;
  cfg.nas.space.nodes_per_phase = 2;
  cfg.nas.space.input_shape = {1, 8, 8};
  cfg.nas.allow_duplicates = true;
  cfg.trainer.max_epochs = 6;
  cfg.trainer.use_prediction_engine = false;
  cfg.memo = memo;
  cfg.seed = 2023;
  return cfg;
}

/// Sorted (fitness, flops) pairs of the Pareto front — the equivalence
/// fingerprint the differential tests check in full.
std::vector<std::pair<double, double>> front_points(
    const nas::SearchResult& result) {
  std::vector<std::pair<double, double>> pts;
  for (std::size_t idx : result.pareto)
    pts.emplace_back(result.history[idx].fitness,
                     static_cast<double>(result.history[idx].flops));
  std::sort(pts.begin(), pts.end());
  return pts;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_memo",
                       "Memo-cache + tabular NAS benchmark (BENCH_memo.json)");
  args.add_option("out", "BENCH_memo.json", "output JSON path");
  args.add_option("sweep", "5000", "tabular sweep size (genome lookups)");
  args.add_option("floor", "",
                  "memo_floor.json with minimum values; exit nonzero if "
                  "any metric measures below half its floor");
  try {
    args.parse(argc, argv);
  } catch (const util::ArgError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), args.usage().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }

  // ---- (a) duplicate-heavy search: memo cold vs memo on -----------------
  core::A4nnWorkflow cold_flow(search_config(nas::MemoMode::kCold));
  util::Timer cold_timer;
  const core::WorkflowResult cold = cold_flow.run();
  const double cold_seconds = cold_timer.seconds();

  core::A4nnWorkflow on_flow(search_config(nas::MemoMode::kOn),
                             cold_flow.dataset());
  util::Timer on_timer;
  const core::WorkflowResult on = on_flow.run();
  const double on_seconds = on_timer.seconds();

  const double speedup = on_seconds > 0.0 ? cold_seconds / on_seconds : 0.0;
  const bool fronts_match =
      front_points(cold.search) == front_points(on.search);
  if (!fronts_match)
    std::fprintf(stderr,
                 "WARNING: cold and memo-on Pareto fronts differ — "
                 "equivalence is broken, speedup is meaningless\n");

  // ---- (b) tabular sweep throughput -------------------------------------
  // Tabulate the same 16-genome space once (full curves, engine off), then
  // serve a large sweep from the table with the engine replayed offline.
  const auto genomes = nas::enumerate_space(search_config(nas::MemoMode::kOff)
                                                .nas.space);
  xfel::XfelDatasetConfig ds;
  ds.images_per_class = 12;
  ds.detector.pixels = 8;
  const xfel::XfelDataset data = xfel::generate_xfel_dataset(ds);

  orchestrator::TrainerConfig trainer;
  trainer.max_epochs = 6;
  trainer.use_prediction_engine = false;
  sched::ClusterConfig cluster_cfg;
  trainer.cost = cluster_cfg.cost;
  nas::SearchSpaceConfig space = search_config(nas::MemoMode::kOff).nas.space;
  space.classes = data.train.num_classes();

  orchestrator::TrainingLoop loop(data.train, data.validation, trainer);
  sched::ResourceManager cluster(cluster_cfg);
  orchestrator::WorkflowEvaluator trainer_eval(loop, cluster, space, 2023);
  util::Timer tabulate_timer;
  const auto table_records = trainer_eval.evaluate_generation(genomes, 0);
  const double tabulate_seconds = tabulate_timer.seconds();
  const nas::GenomeTable table = nas::GenomeTable::from_records(table_records);

  nas::TableEvaluator sweep_eval(table, penguin::default_engine_config());
  const std::size_t sweep = args.get_size("sweep");
  std::vector<nas::Genome> queries;
  queries.reserve(sweep);
  util::Rng rng(7);
  for (std::size_t i = 0; i < sweep; ++i)
    queries.push_back(genomes[rng.next_u64() % genomes.size()]);
  util::Timer sweep_timer;
  std::size_t sweep_failed = 0;
  for (std::size_t start = 0; start < sweep; start += 100) {
    const std::size_t n = std::min<std::size_t>(100, sweep - start);
    const auto records = sweep_eval.evaluate_generation(
        std::span<const nas::Genome>(queries.data() + start, n),
        static_cast<int>(start / 100));
    for (const auto& r : records)
      if (r.failed) ++sweep_failed;
  }
  const double sweep_seconds = sweep_timer.seconds();
  const double genomes_per_sec =
      sweep_seconds > 0.0 ? static_cast<double>(sweep) / sweep_seconds : 0.0;

  // ---- report ------------------------------------------------------------
  util::AsciiTable tbl({"metric", "value"});
  tbl.add_row({"cold search (s)", util::AsciiTable::num(cold_seconds, 2)});
  tbl.add_row({"memo-on search (s)", util::AsciiTable::num(on_seconds, 2)});
  tbl.add_row({"search speedup", util::AsciiTable::num(speedup, 2)});
  tbl.add_row({"memo hits", std::to_string(on.summary.memo_hits)});
  tbl.add_row({"fronts match", fronts_match ? "yes" : "NO"});
  tbl.add_row({"tabulate 16 genomes (s)",
               util::AsciiTable::num(tabulate_seconds, 2)});
  tbl.add_row({"tabular sweep (genomes/s)",
               util::AsciiTable::num(genomes_per_sec, 0)});
  tbl.add_row({"sweep fit-cache hits",
               std::to_string(sweep_eval.fit_cache_hits())});
  std::printf("%s", tbl.render().c_str());

  util::Json json = util::Json::object();
  json["cold_seconds"] = cold_seconds;
  json["memo_on_seconds"] = on_seconds;
  json["search_speedup"] = speedup;
  json["memo_hits"] = on.summary.memo_hits;
  json["evaluations"] = cold.search.history.size();
  json["fronts_match"] = fronts_match;
  json["tabulate_seconds"] = tabulate_seconds;
  json["tabular_genomes_per_sec"] = genomes_per_sec;
  json["sweep_size"] = sweep;
  json["sweep_failed"] = sweep_failed;
  json["fit_cache_hits"] = sweep_eval.fit_cache_hits();
  util::write_file(args.get("out"), json.dump(2));
  std::printf("wrote %s\n", args.get("out").c_str());

  int violations = fronts_match && sweep_failed == 0 ? 0 : 1;
  if (!args.get("floor").empty()) {
    const util::Json floors =
        util::Json::parse(util::read_file(args.get("floor")));
    struct Gate {
      const char* key;
      double value;
    };
    const Gate gates[] = {{"search_speedup", speedup},
                          {"tabular_genomes_per_sec", genomes_per_sec}};
    for (const Gate& g : gates) {
      if (!floors.contains(g.key)) continue;
      const double floor = floors.at(g.key).as_number();
      if (g.value < floor / 2.0) {
        std::fprintf(stderr, "REGRESSION %s: %.2f < half of floor %.2f\n",
                     g.key, g.value, floor);
        ++violations;
      }
    }
    if (violations == 0)
      std::printf("floor check passed (%s)\n", args.get("floor").c_str());
  }
  return violations > 0 ? 2 : 0;
}
