// Ablation: the convergence policy (N, r) and warm-up (C_min) of the
// prediction analyzer — DESIGN.md's "stricter windows save fewer epochs
// but make safer predictions" trade-off, measured on recorded curves.
#include <cstdio>

#include "bench/common.hpp"
#include "penguin/engine.hpp"
#include "util/stats.hpp"

using namespace a4nn;

namespace {

struct PolicyOutcome {
  double saved_percent = 0.0;
  double terminated_percent = 0.0;
  double mean_abs_error = 0.0;
};

PolicyOutcome evaluate_policy(const std::vector<std::vector<double>>& curves,
                              const std::vector<double>& truth,
                              penguin::EngineConfig cfg) {
  const penguin::PredictionEngine engine(std::move(cfg));
  std::size_t total_epochs = 0, budget = 0, terminated = 0;
  std::vector<double> errors;
  for (std::size_t i = 0; i < curves.size(); ++i) {
    const auto sim = penguin::simulate_early_termination(curves[i], engine);
    total_epochs += sim.epochs_trained;
    budget += curves[i].size();
    if (sim.early_terminated) {
      ++terminated;
      errors.push_back(std::abs(sim.reported_fitness - truth[i]));
    }
  }
  PolicyOutcome out;
  out.saved_percent = 100.0 * (1.0 - static_cast<double>(total_epochs) /
                                         static_cast<double>(budget));
  out.terminated_percent = 100.0 * static_cast<double>(terminated) /
                           static_cast<double>(curves.size());
  out.mean_abs_error = errors.empty() ? 0.0 : util::mean(errors);
  return out;
}

}  // namespace

int main() {
  const bench::BenchScale scale = bench::bench_scale();
  std::printf("=== Ablation: convergence policy (N, r) and warm-up C_min ===\n\n");
  bench::print_configuration_tables(scale);

  std::vector<std::vector<double>> curves;
  std::vector<double> truth;
  for (const auto intensity : bench::all_intensities()) {
    for (const auto& r :
         bench::run_or_load(scale, intensity, false, bench::kSeedA)) {
      curves.push_back(r.fitness_history);
      truth.push_back(r.fitness_history.back());
    }
  }

  util::AsciiTable table({"N", "r", "C_min", "epochs saved (%)",
                          "terminated (%)", "mean |error| (pp)"});
  util::CsvWriter csv({"window", "tolerance", "c_min", "saved_percent",
                       "terminated_percent", "mean_abs_error"});
  for (const std::size_t window : {2, 3, 5}) {
    for (const double tolerance : {0.1, 0.5, 2.0}) {
      for (const std::size_t c_min : {3, 6}) {
        penguin::EngineConfig cfg = penguin::default_engine_config();
        cfg.window = window;
        cfg.tolerance = tolerance;
        cfg.c_min = c_min;
        cfg.e_pred = static_cast<double>(scale.max_epochs);
        const PolicyOutcome out = evaluate_policy(curves, truth, cfg);
        table.add_row({std::to_string(window),
                       util::AsciiTable::num(tolerance, 1),
                       std::to_string(c_min),
                       util::AsciiTable::num(out.saved_percent, 1),
                       util::AsciiTable::num(out.terminated_percent, 1),
                       util::AsciiTable::num(out.mean_abs_error, 2)});
        csv.add_row({std::to_string(window),
                     util::AsciiTable::num(tolerance, 2),
                     std::to_string(c_min),
                     util::AsciiTable::num(out.saved_percent, 2),
                     util::AsciiTable::num(out.terminated_percent, 2),
                     util::AsciiTable::num(out.mean_abs_error, 3)});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected trade-off: looser tolerance r and shorter windows N save\n"
      "more epochs but increase prediction error; larger C_min delays the\n"
      "first prediction and trims savings. The paper's (N=3, r=0.5, C_min=3)\n"
      "sits in the safe-savings corner.\n");
  csv.save(bench::artifacts_dir() / "ablation_policy.csv");
  std::printf("\nseries written to bench_artifacts/ablation_policy.csv\n");
  return 0;
}
