// Ablation: which parametric function family best predicts NN fitness?
// (One of the open questions in the paper's conclusions.)
//
// Replays Algorithm 1 offline over the *recorded* 25-epoch fitness curves
// of the standalone searches (ground truth available for every epoch), so
// every family is judged on identical learning curves: epochs saved,
// share of curves terminated early, and the absolute error between the
// reported fitness and the true epoch-25 accuracy.
#include <cstdio>

#include "bench/common.hpp"
#include "penguin/engine.hpp"
#include "util/stats.hpp"

using namespace a4nn;

int main() {
  const bench::BenchScale scale = bench::bench_scale();
  std::printf("=== Ablation: parametric function families ===\n\n");
  bench::print_configuration_tables(scale);

  // Pool the recorded full-length curves from every intensity.
  std::vector<std::vector<double>> curves;
  std::vector<double> truth;
  for (const auto intensity : bench::all_intensities()) {
    for (const auto& r :
         bench::run_or_load(scale, intensity, false, bench::kSeedA)) {
      curves.push_back(r.fitness_history);
      truth.push_back(r.fitness_history.back());
    }
  }
  std::printf("replaying %zu recorded %zu-epoch learning curves\n\n",
              curves.size(), scale.max_epochs);

  util::AsciiTable table({"family", "epochs saved (%)", "terminated (%)",
                          "mean |error| (pp)", "p95 |error| (pp)"});
  util::CsvWriter csv({"family", "saved_percent", "terminated_percent",
                       "mean_abs_error", "p95_abs_error"});
  for (const auto& name : penguin::function_names()) {
    penguin::EngineConfig cfg = penguin::default_engine_config();
    cfg.function = penguin::make_function(name);
    cfg.e_pred = static_cast<double>(scale.max_epochs);
    const penguin::PredictionEngine engine(cfg);

    std::size_t total_epochs = 0, budget = 0, terminated = 0;
    std::vector<double> errors;
    for (std::size_t i = 0; i < curves.size(); ++i) {
      const auto sim = penguin::simulate_early_termination(curves[i], engine);
      total_epochs += sim.epochs_trained;
      budget += curves[i].size();
      if (sim.early_terminated) {
        ++terminated;
        errors.push_back(std::abs(sim.reported_fitness - truth[i]));
      }
    }
    const double saved =
        100.0 * (1.0 - static_cast<double>(total_epochs) /
                           static_cast<double>(budget));
    const double term_pct =
        100.0 * static_cast<double>(terminated) /
        static_cast<double>(curves.size());
    const double mean_err = errors.empty() ? 0.0 : util::mean(errors);
    const double p95_err = errors.empty() ? 0.0 : util::percentile(errors, 95);
    table.add_row({name, util::AsciiTable::num(saved, 1),
                   util::AsciiTable::num(term_pct, 1),
                   util::AsciiTable::num(mean_err, 2),
                   util::AsciiTable::num(p95_err, 2)});
    csv.add_row({name, util::AsciiTable::num(saved, 2),
                 util::AsciiTable::num(term_pct, 2),
                 util::AsciiTable::num(mean_err, 3),
                 util::AsciiTable::num(p95_err, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected: the paper's pow_exp family saves substantial epochs with\n"
      "small error; families mismatched to concave saturating curves either\n"
      "terminate rarely (few savings) or pay with larger prediction error.\n");
  csv.save(bench::artifacts_dir() / "ablation_functions.csv");
  std::printf("\nseries written to bench_artifacts/ablation_functions.csv\n");
  return 0;
}
