// Figure 9: wall time required to train the search's networks — standalone
// NSGA-Net on 1 GPU vs A4NN on 1 GPU vs A4NN on 4 GPUs — per intensity.
// Wall times are virtual-device times from the calibrated cost model (see
// sched/cost_model.hpp); the 4-GPU numbers come from replaying the cached
// per-model durations through the FIFO scheduler.
//
// Expected shape (paper): A4NN < standalone on 1 GPU (epoch savings turn
// into hours saved); A4NN on 4 GPUs achieves a near-linear 3.4-3.9x
// speedup over A4NN on 1 GPU, limited by generation-barrier idle time.
#include <cstdio>

#include "analytics/analyzer.hpp"
#include "bench/common.hpp"

using namespace a4nn;

int main() {
  const bench::BenchScale scale = bench::bench_scale();
  std::printf("=== Figure 9: wall times and multi-GPU speedups ===\n\n");
  bench::print_configuration_tables(scale);

  util::AsciiTable table({"intensity", "variant", "wall time (h)",
                          "vs standalone", "idle (h)"});
  util::CsvWriter csv({"intensity", "variant", "gpus", "wall_hours",
                       "idle_hours"});
  for (const auto intensity : bench::all_intensities()) {
    const auto standalone =
        bench::run_or_load(scale, intensity, false, bench::kSeedA);
    const auto a4nn_a =
        bench::run_or_load(scale, intensity, true, bench::kSeedA);
    const auto a4nn_b =
        bench::run_or_load(scale, intensity, true, bench::kSeedB);

    const auto base = bench::replay_schedule(standalone, 1);
    const auto one = bench::replay_schedule(a4nn_a, 1);
    const auto four = bench::replay_schedule(a4nn_b, 4);

    struct Row {
      const char* variant;
      const bench::ReplayResult* replay;
      std::size_t gpus;
    };
    for (const Row row : {Row{"NSGA-Net (1 GPU)", &base, 1},
                          Row{"A4NN (1 GPU)", &one, 1},
                          Row{"A4NN (4 GPUs)", &four, 4}}) {
      const double hours = row.replay->total_virtual_seconds / 3600.0;
      const double idle = row.replay->total_idle_seconds / 3600.0;
      const double ratio =
          base.total_virtual_seconds / row.replay->total_virtual_seconds;
      table.add_row({xfel::beam_name(intensity), row.variant,
                     util::AsciiTable::num(hours, 2),
                     util::AsciiTable::num(ratio, 2) + "x",
                     util::AsciiTable::num(idle, 2)});
      csv.add_row({xfel::beam_name(intensity), row.variant,
                   std::to_string(row.gpus), util::AsciiTable::num(hours, 3),
                   util::AsciiTable::num(idle, 3)});
    }

    // Clean scheduling speedup: the same run replayed on 1 vs 4 devices.
    const auto b_on_one = bench::replay_schedule(a4nn_b, 1);
    const double speedup =
        b_on_one.total_virtual_seconds / four.total_virtual_seconds;
    std::printf("%s intensity: A4NN 1->4 GPU wall-time speedup %.2fx "
                "(paper: 3.4-3.9x, near-linear)\n",
                xfel::beam_name(intensity), speedup);
  }
  std::printf("\n%s\n", table.render().c_str());
  csv.save(bench::artifacts_dir() / "fig9_walltime.csv");
  std::printf("series written to bench_artifacts/fig9_walltime.csv\n");
  return 0;
}
