// Figure 8: distribution of e_t, the epoch at which the prediction engine
// terminated training, per beam intensity; the legend reports the share of
// networks terminated early.
//
// Expected shape (paper): low intensity terminates late (mean e_t > 18 at
// paper scale) because noisy curves take longer to stabilize; medium
// terminates earliest with the largest early-termination share (>70%);
// high sits between, with a wide spread.
#include <cstdio>

#include "analytics/analyzer.hpp"
#include "bench/common.hpp"

using namespace a4nn;

int main() {
  const bench::BenchScale scale = bench::bench_scale();
  std::printf("=== Figure 8: termination-epoch (e_t) distributions ===\n\n");
  bench::print_configuration_tables(scale);

  util::CsvWriter csv({"intensity", "variant", "e_t"});
  for (const auto intensity : bench::all_intensities()) {
    struct Run {
      const char* variant;
      std::uint64_t seed;
    };
    for (const Run run : {Run{"A4NN (1 GPU)", bench::kSeedA},
                          Run{"A4NN (4 GPUs)", bench::kSeedB}}) {
      const auto records =
          bench::run_or_load(scale, intensity, true, run.seed);
      const auto stats = analytics::termination_stats(records);
      std::printf("--- %s intensity, %s ---\n", xfel::beam_name(intensity),
                  run.variant);
      std::printf("terminated early: %.0f%% of %zu networks, mean e_t = %.1f\n",
                  100.0 * stats.early_fraction, records.size(),
                  stats.mean_e_t);
      if (!stats.termination_epochs.empty()) {
        std::printf("%s\n", stats.histogram.render(40).c_str());
      }
      for (double e_t : stats.termination_epochs) {
        csv.add_row({xfel::beam_name(intensity), run.variant,
                     util::AsciiTable::num(e_t, 0)});
      }
    }
  }
  csv.save(bench::artifacts_dir() / "fig8_termination.csv");
  std::printf("series written to bench_artifacts/fig8_termination.csv\n");
  return 0;
}
