// Figure 6: validation accuracy vs FLOPs of the Pareto-optimal models for
// (a) A4NN and (b) standalone NSGA-Net, at each beam intensity.
//
// Expected shape (paper): A4NN's frontier matches or dominates the
// standalone frontier at every intensity — augmenting the search with the
// prediction engine does not diminish NAS quality.
#include <cstdio>

#include "analytics/analyzer.hpp"
#include "bench/common.hpp"

using namespace a4nn;

namespace {

void print_frontier(const char* title,
                    const std::vector<nas::EvaluationRecord>& records) {
  const auto pareto = analytics::pareto_indices(records);
  // "fitness" is what the NAS optimizes and the paper plots: the engine's
  // converged prediction of accuracy@e_pred for early-terminated models,
  // the final measured accuracy otherwise (shown alongside).
  util::AsciiTable table({"model", "fitness (%)", "measured@e_t (%)",
                          "FLOPs/image", "epochs", "early"});
  for (std::size_t idx : pareto) {
    const auto& r = records[idx];
    table.add_row({std::to_string(r.model_id),
                   util::AsciiTable::num(r.fitness, 2),
                   util::AsciiTable::num(r.measured_fitness, 2),
                   std::to_string(r.flops), std::to_string(r.epochs_trained),
                   r.early_terminated ? "yes" : "no"});
  }
  std::printf("%s (%zu Pareto-optimal of %zu models)\n%s\n", title,
              pareto.size(), records.size(), table.render().c_str());
}

}  // namespace

int main() {
  const bench::BenchScale scale = bench::bench_scale();
  std::printf("=== Figure 6: Pareto frontiers, A4NN vs standalone NSGA-Net ===\n\n");
  bench::print_configuration_tables(scale);

  util::CsvWriter csv(
      {"intensity", "variant", "model", "accuracy", "flops"});
  for (const auto intensity : bench::all_intensities()) {
    const auto a4nn_records =
        bench::run_or_load(scale, intensity, true, bench::kSeedA);
    const auto standalone_records =
        bench::run_or_load(scale, intensity, false, bench::kSeedA);

    std::printf("--- %s beam intensity (fluence %.0e photons/um^2/pulse) ---\n\n",
                xfel::beam_name(intensity), xfel::beam_fluence(intensity));
    char title[128];
    std::snprintf(title, sizeof(title), "(a) A4NN, %s intensity",
                  xfel::beam_name(intensity));
    print_frontier(title, a4nn_records);
    std::snprintf(title, sizeof(title), "(b) standalone NSGA-Net, %s intensity",
                  xfel::beam_name(intensity));
    print_frontier(title, standalone_records);

    const auto sa = analytics::fitness_summary(a4nn_records);
    const auto ss = analytics::fitness_summary(standalone_records);
    std::printf("best accuracy: A4NN %.2f%% vs standalone %.2f%%  "
                "(paper shape: A4NN matches or exceeds)\n",
                sa.best, ss.best);
    // Whole-frontier comparison: normalized hypervolume over the
    // (accuracy >= 50%, FLOPs <= 5M) box.
    const double hv_a4nn =
        analytics::frontier_hypervolume(a4nn_records, 50.0, 5e6);
    const double hv_standalone =
        analytics::frontier_hypervolume(standalone_records, 50.0, 5e6);
    std::printf("frontier hypervolume: A4NN %.4f vs standalone %.4f\n\n",
                hv_a4nn, hv_standalone);

    for (const auto* pair :
         {&a4nn_records, &standalone_records}) {
      const bool is_a4nn = pair == &a4nn_records;
      for (std::size_t idx : analytics::pareto_indices(*pair)) {
        const auto& r = (*pair)[idx];
        csv.add_row({xfel::beam_name(intensity),
                     is_a4nn ? "a4nn" : "standalone",
                     std::to_string(r.model_id),
                     util::AsciiTable::num(r.fitness, 4),
                     std::to_string(r.flops)});
      }
    }
  }
  csv.save(bench::artifacts_dir() / "fig6_pareto.csv");
  std::printf("series written to bench_artifacts/fig6_pareto.csv\n");
  return 0;
}
