// Training-kernel microbenchmark: GFLOP/s for the blocked/packed GEMM
// variants (and the naive baseline they replaced), the autotuned GEMM, and
// the direct vs im2col convolution paths, on cubic and conv-shaped
// problems. Emits BENCH_kernels.json so CI can archive throughput per
// commit, and — with --floor — enforces a regression gate: any kernel
// running at less than half its checked-in floor fails the run, as does
// any measured kernel missing from the floor file or any floor entry that
// no longer matches a measured kernel (so new/renamed kernels can never
// ship ungated).
//
//   ./bench_kernels                          # print table + write JSON
//   ./bench_kernels --floor ../bench/kernels_floor.json
//   ./bench_kernels --tune-config tune.json  # use a journaled tune
//
// Without --tune-config the bench runs the in-process autotuner over its
// own shapes first, so the gemm_tuned rows always measure a real tuned
// config and the measured kernel set is identical either way.
#include <array>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "tensor/autotune.hpp"
#include "tensor/ops.hpp"
#include "util/args.hpp"
#include "util/frame.hpp"
#include "util/fsutil.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace a4nn;

namespace {

struct Case {
  std::string kernel;
  std::size_t m, k, n;
  // Runs the kernel once; buffers are captured by the closure.
  std::function<void()> run;
};

struct Result {
  std::string key;     // "kernel mxkxn"
  double gflops = 0.0;
  double ns_per_iter = 0.0;
};

std::vector<float> random_buffer(std::size_t count, util::Rng& rng) {
  std::vector<float> buf(count);
  for (auto& v : buf) v = static_cast<float>(rng.normal());
  return buf;
}

// Time one case: warm up, then run batches until enough wall time has
// accumulated for a stable rate.
Result measure(const Case& c) {
  c.run();  // warm-up (touch pages, prime caches)
  const double target_seconds = 0.15;
  std::size_t iters = 0;
  util::Timer timer;
  do {
    c.run();
    ++iters;
  } while (timer.seconds() < target_seconds);
  const double elapsed = timer.seconds();
  const double flop = 2.0 * static_cast<double>(c.m) * c.k * c.n * iters;
  Result r;
  r.key = c.kernel + " " + std::to_string(c.m) + "x" + std::to_string(c.k) +
          "x" + std::to_string(c.n);
  r.gflops = flop / elapsed / 1e9;
  r.ns_per_iter = elapsed / static_cast<double>(iters) * 1e9;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_kernels",
                       "GEMM kernel throughput benchmark (BENCH_kernels.json)");
  args.add_option("out", "BENCH_kernels.json", "output JSON path");
  args.add_option("floor", "",
                  "kernels_floor.json with minimum GFLOP/s per kernel; exit "
                  "nonzero if any kernel measures below half its floor, is "
                  "missing from the file, or the file names a kernel that "
                  "was not measured");
  args.add_option("tune-config", "",
                  "tune.json from a4nn_tune for the gemm_tuned rows (empty: "
                  "self-tune in process over the bench shapes)");
  try {
    args.parse(argc, argv);
  } catch (const util::ArgError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), args.usage().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }

  util::Rng rng(42);
  // Cubic sizes bracket the cache hierarchy; the rectangular shapes are the
  // actual GEMMs behind an 8x8-detector conv layer (m=channels,
  // k=in_ch*3*3, n=out_pixels) and a classifier head.
  const std::vector<std::array<std::size_t, 3>> shapes = {
      {64, 64, 64},    {128, 128, 128}, {256, 256, 256},
      {16, 36, 64},    {32, 144, 64},   {64, 10, 256},
  };

  // Blocking configs for the gemm_tuned rows: a journaled tune.json, or a
  // quick in-process tune over the same shapes. Applied per case via
  // gemm_with_config so the untuned baseline rows stay untuned.
  std::map<std::pair<std::size_t, std::size_t>, tensor::TileConfig> tuned;
  {
    std::vector<tensor::TunedTileEntry> entries;
    if (!args.get("tune-config").empty()) {
      entries = tensor::tune_entries_from_json(util::Json::parse(
          util::unframe_or_legacy(util::read_file(args.get("tune-config")))
              .payload));
      std::printf("tuned rows use %s\n", args.get("tune-config").c_str());
    } else {
      std::vector<tensor::TuneShape> tune_shapes;
      for (const auto& [m, k, n] : shapes)
        tune_shapes.push_back({"bench_gemm", m, k, n, false});
      tensor::TuneOptions opts;
      opts.seed = 42;
      opts.repeats = 2;
      entries = tensor::run_tune(tune_shapes, opts).entries;
      std::printf("tuned rows use an in-process self-tune\n");
    }
    for (const auto& e : entries) tuned[{e.k, e.n}] = e.config;
  }
  auto tuned_config = [&tuned](std::size_t k, std::size_t n) {
    const auto it = tuned.find({k, n});
    return it == tuned.end() ? tensor::TileConfig{} : it->second;
  };

  std::vector<Case> cases;
  // Keep every buffer alive for the duration of the run.
  auto buffers = std::make_shared<std::vector<std::vector<float>>>();
  auto keep = [&buffers](std::vector<float> v) {
    buffers->push_back(std::move(v));
    return buffers->back().data();
  };

  for (const auto& [m, k, n] : shapes) {
    float* a = keep(random_buffer(m * k, rng));
    float* b = keep(random_buffer(k * n, rng));
    float* bias = keep(random_buffer(m, rng));
    float* c = keep(std::vector<float>(m * n));
    cases.push_back({"gemm_naive", m, k, n,
                     [=] { tensor::gemm_naive(m, k, n, a, b, c); }});
    cases.push_back(
        {"gemm", m, k, n, [=] { tensor::gemm(m, k, n, a, b, c); }});
    const tensor::TileConfig tc = tuned_config(k, n);
    cases.push_back({"gemm_tuned", m, k, n, [=] {
                       tensor::gemm_with_config(m, k, n, a, b, c, tc);
                     }});
    // a interpreted as (k x m) / b as (n x k): same buffers, valid layouts.
    float* at = keep(random_buffer(k * m, rng));
    float* bt = keep(random_buffer(n * k, rng));
    cases.push_back({"gemm_at_b", m, k, n,
                     [=] { tensor::gemm_at_b(m, k, n, at, b, c); }});
    cases.push_back({"gemm_a_bt", m, k, n,
                     [=] { tensor::gemm_a_bt(m, k, n, a, bt, c); }});
    const tensor::Epilogue ep{tensor::Epilogue::Bias::kPerRow, bias, true};
    cases.push_back({"gemm_bias_relu", m, k, n,
                     [=] { tensor::gemm_ex(m, k, n, a, b, c, ep); }});
  }

  // Convolution forward, materialized vs direct, on the 3x3 stride-1
  // geometries the search space emits (stem and phase-node shapes at a
  // 16x16 detector, and a post-downsample phase shape).
  const std::vector<std::array<std::size_t, 3>> conv_geoms = {
      {1, 16, 4},   // stem: 1 -> 4 channels at 16x16
      {4, 16, 4},   // phase node at 16x16
      {8, 8, 8},    // phase node after one downsample
  };
  for (const auto& [in_ch, hw, out_ch] : conv_geoms) {
    tensor::ConvGeometry g{in_ch, hw, hw, 3, 1, 1};
    const std::size_t m = out_ch;
    const std::size_t k = g.patch_size();
    const std::size_t n = g.out_h() * g.out_w();
    float* w = keep(random_buffer(m * k, rng));
    float* image = keep(random_buffer(in_ch * hw * hw, rng));
    float* cols = keep(std::vector<float>(k * n));
    float* bias = keep(random_buffer(m, rng));
    float* out = keep(std::vector<float>(m * n));
    const tensor::Epilogue ep{tensor::Epilogue::Bias::kPerRow, bias, true};
    const std::size_t image_n = in_ch * hw * hw;
    cases.push_back({"conv_im2col", m, k, n, [=] {
                       tensor::im2col(g, {image, image_n}, {cols, k * n});
                       tensor::gemm_ex(m, k, n, w, cols, out, ep);
                     }});
    cases.push_back({"conv_direct", m, k, n, [=] {
                       tensor::conv2d_forward_direct(g, m, w, {image, image_n},
                                                     out, ep);
                     }});
  }

  util::AsciiTable table({"kernel", "m", "k", "n", "GFLOP/s", "ns/iter"});
  util::Json json = util::Json::object();
  util::Json entries = util::Json::array();
  std::vector<Result> results;
  for (const auto& c : cases) {
    const Result r = measure(c);
    results.push_back(r);
    table.add_row({c.kernel, std::to_string(c.m), std::to_string(c.k),
                   std::to_string(c.n), util::AsciiTable::num(r.gflops, 2),
                   util::AsciiTable::num(r.ns_per_iter, 0)});
    util::Json e = util::Json::object();
    e["kernel"] = c.kernel;
    e["m"] = c.m;
    e["k"] = c.k;
    e["n"] = c.n;
    e["gflops"] = r.gflops;
    e["ns_per_iter"] = r.ns_per_iter;
    entries.push_back(std::move(e));
  }
  std::printf("%s", table.render().c_str());

  // Headline numbers: blocked vs naive at the largest cubic size, and
  // direct vs im2col on the largest conv shape.
  double naive256 = 0.0, blocked256 = 0.0;
  double im2col_best = 0.0, direct_best = 0.0;
  for (const auto& r : results) {
    if (r.key == "gemm_naive 256x256x256") naive256 = r.gflops;
    if (r.key == "gemm 256x256x256") blocked256 = r.gflops;
    if (r.key == "conv_im2col 4x36x256") im2col_best = r.gflops;
    if (r.key == "conv_direct 4x36x256") direct_best = r.gflops;
  }
  const double speedup = naive256 > 0.0 ? blocked256 / naive256 : 0.0;
  std::printf("gemm vs gemm_naive at 256^3: %.2fx\n", speedup);
  const double conv_speedup =
      im2col_best > 0.0 ? direct_best / im2col_best : 0.0;
  std::printf("conv_direct vs conv_im2col at 4x36x256: %.2fx\n", conv_speedup);
  json["speedup_256"] = speedup;
  json["conv_direct_speedup"] = conv_speedup;
  json["kernels"] = std::move(entries);
  util::write_file(args.get("out"), json.dump(2));
  std::printf("wrote %s\n", args.get("out").c_str());

  if (!args.get("floor").empty()) {
    const util::Json floors =
        util::Json::parse(util::read_file(args.get("floor")));
    // Two-way hard matching: every measured kernel needs a floor, every
    // floor key needs a measured kernel. Keys starting with "_" are
    // comments/metadata.
    std::map<std::string, double> floor_map;
    for (const auto& [key, value] : floors.as_object())
      if (!key.starts_with("_")) floor_map[key] = value.as_number();
    int violations = 0;
    std::set<std::string> matched;
    for (const auto& r : results) {
      const auto it = floor_map.find(r.key);
      if (it == floor_map.end()) {
        std::fprintf(stderr,
                     "UNGATED %s: measured kernel has no floor entry — add "
                     "it to %s\n",
                     r.key.c_str(), args.get("floor").c_str());
        ++violations;
        continue;
      }
      matched.insert(r.key);
      if (r.gflops < it->second / 2.0) {
        std::fprintf(stderr,
                     "REGRESSION %s: %.2f GFLOP/s < half of floor %.2f\n",
                     r.key.c_str(), r.gflops, it->second);
        ++violations;
      }
    }
    for (const auto& [key, value] : floor_map) {
      if (!matched.contains(key)) {
        std::fprintf(stderr,
                     "STALE FLOOR %s: no measured kernel matches this entry "
                     "— remove or rename it\n",
                     key.c_str());
        ++violations;
      }
    }
    if (violations > 0) return 2;
    std::printf("floor check passed (%s)\n", args.get("floor").c_str());
  }
  return 0;
}
