// Training-kernel microbenchmark: GFLOP/s for the blocked/packed GEMM
// variants (and the naive baseline they replaced) on cubic and conv-shaped
// problems. Emits BENCH_kernels.json so CI can archive throughput per
// commit, and — with --floor — enforces a regression gate: any kernel
// running at less than half its checked-in floor fails the run.
//
//   ./bench_kernels                          # print table + write JSON
//   ./bench_kernels --floor ../bench/kernels_floor.json
#include <array>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/ops.hpp"
#include "util/args.hpp"
#include "util/fsutil.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace a4nn;

namespace {

struct Case {
  std::string kernel;
  std::size_t m, k, n;
  // Runs the kernel once; buffers are captured by the closure.
  std::function<void()> run;
};

struct Result {
  std::string key;     // "kernel mxkxn"
  double gflops = 0.0;
  double ns_per_iter = 0.0;
};

std::vector<float> random_buffer(std::size_t count, util::Rng& rng) {
  std::vector<float> buf(count);
  for (auto& v : buf) v = static_cast<float>(rng.normal());
  return buf;
}

// Time one case: warm up, then run batches until enough wall time has
// accumulated for a stable rate.
Result measure(const Case& c) {
  c.run();  // warm-up (touch pages, prime caches)
  const double target_seconds = 0.15;
  std::size_t iters = 0;
  util::Timer timer;
  do {
    c.run();
    ++iters;
  } while (timer.seconds() < target_seconds);
  const double elapsed = timer.seconds();
  const double flop = 2.0 * static_cast<double>(c.m) * c.k * c.n * iters;
  Result r;
  r.key = c.kernel + " " + std::to_string(c.m) + "x" + std::to_string(c.k) +
          "x" + std::to_string(c.n);
  r.gflops = flop / elapsed / 1e9;
  r.ns_per_iter = elapsed / static_cast<double>(iters) * 1e9;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_kernels",
                       "GEMM kernel throughput benchmark (BENCH_kernels.json)");
  args.add_option("out", "BENCH_kernels.json", "output JSON path");
  args.add_option("floor", "",
                  "kernels_floor.json with minimum GFLOP/s per kernel; exit "
                  "nonzero if any kernel measures below half its floor");
  try {
    args.parse(argc, argv);
  } catch (const util::ArgError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), args.usage().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.usage().c_str());
    return 0;
  }

  util::Rng rng(42);
  // Cubic sizes bracket the cache hierarchy; the rectangular shapes are the
  // actual GEMMs behind an 8x8-detector conv layer (m=channels,
  // k=in_ch*3*3, n=out_pixels) and a classifier head.
  const std::vector<std::array<std::size_t, 3>> shapes = {
      {64, 64, 64},    {128, 128, 128}, {256, 256, 256},
      {16, 36, 64},    {32, 144, 64},   {64, 10, 256},
  };

  std::vector<Case> cases;
  // Keep every buffer alive for the duration of the run.
  auto buffers = std::make_shared<std::vector<std::vector<float>>>();
  auto keep = [&buffers](std::vector<float> v) {
    buffers->push_back(std::move(v));
    return buffers->back().data();
  };

  for (const auto& [m, k, n] : shapes) {
    float* a = keep(random_buffer(m * k, rng));
    float* b = keep(random_buffer(k * n, rng));
    float* bias = keep(random_buffer(m, rng));
    float* c = keep(std::vector<float>(m * n));
    cases.push_back({"gemm_naive", m, k, n,
                     [=] { tensor::gemm_naive(m, k, n, a, b, c); }});
    cases.push_back(
        {"gemm", m, k, n, [=] { tensor::gemm(m, k, n, a, b, c); }});
    // a interpreted as (k x m) / b as (n x k): same buffers, valid layouts.
    float* at = keep(random_buffer(k * m, rng));
    float* bt = keep(random_buffer(n * k, rng));
    cases.push_back({"gemm_at_b", m, k, n,
                     [=] { tensor::gemm_at_b(m, k, n, at, b, c); }});
    cases.push_back({"gemm_a_bt", m, k, n,
                     [=] { tensor::gemm_a_bt(m, k, n, a, bt, c); }});
    const tensor::Epilogue ep{tensor::Epilogue::Bias::kPerRow, bias, true};
    cases.push_back({"gemm_bias_relu", m, k, n,
                     [=] { tensor::gemm_ex(m, k, n, a, b, c, ep); }});
  }

  util::AsciiTable table({"kernel", "m", "k", "n", "GFLOP/s", "ns/iter"});
  util::Json json = util::Json::object();
  util::Json entries = util::Json::array();
  std::vector<Result> results;
  for (const auto& c : cases) {
    const Result r = measure(c);
    results.push_back(r);
    table.add_row({c.kernel, std::to_string(c.m), std::to_string(c.k),
                   std::to_string(c.n), util::AsciiTable::num(r.gflops, 2),
                   util::AsciiTable::num(r.ns_per_iter, 0)});
    util::Json e = util::Json::object();
    e["kernel"] = c.kernel;
    e["m"] = c.m;
    e["k"] = c.k;
    e["n"] = c.n;
    e["gflops"] = r.gflops;
    e["ns_per_iter"] = r.ns_per_iter;
    entries.push_back(std::move(e));
  }
  std::printf("%s", table.render().c_str());

  // Headline number: blocked vs naive at the largest cubic size.
  double naive256 = 0.0, blocked256 = 0.0;
  for (const auto& r : results) {
    if (r.key == "gemm_naive 256x256x256") naive256 = r.gflops;
    if (r.key == "gemm 256x256x256") blocked256 = r.gflops;
  }
  const double speedup = naive256 > 0.0 ? blocked256 / naive256 : 0.0;
  std::printf("gemm vs gemm_naive at 256^3: %.2fx\n", speedup);
  json["speedup_256"] = speedup;
  json["kernels"] = std::move(entries);
  util::write_file(args.get("out"), json.dump(2));
  std::printf("wrote %s\n", args.get("out").c_str());

  if (!args.get("floor").empty()) {
    const util::Json floors = util::Json::parse(util::read_file(args.get("floor")));
    int violations = 0;
    for (const auto& r : results) {
      if (!floors.contains(r.key)) continue;
      const double floor = floors.at(r.key).as_number();
      if (r.gflops < floor / 2.0) {
        std::fprintf(stderr,
                     "REGRESSION %s: %.2f GFLOP/s < half of floor %.2f\n",
                     r.key.c_str(), r.gflops, floor);
        ++violations;
      }
    }
    if (violations > 0) return 2;
    std::printf("floor check passed (%s)\n", args.get("floor").c_str());
  }
  return 0;
}
